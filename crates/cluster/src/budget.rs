//! Fleet-level power-budget arbitration.
//!
//! [`FleetConfig::power_cap_w`](crate::fleet::FleetConfig::power_cap_w)
//! caps each node *locally*; real facility power management caps the
//! *sum* of node draws. This module is the serial heart of the
//! tick-synchronous three-phase fleet pass: every node first proposes
//! its 60 s tick from its own deterministic `(seed, node_id)` stream
//! (parallel), then [`arbitrate`] folds the proposals against the
//! remaining per-tick budget in node-id order (serial), and the
//! decisions are applied back to samples (parallel). Because the fold
//! consumes proposals in a fixed order and touches no RNG, the outcome
//! is bitwise-identical for any sweep thread count.
//!
//! Idle floors are **unconditional**: a powered-on node draws its idle
//! floor whether or not the arbiter admits its proposal (a facility
//! cannot shed below idle without powering nodes off). The arbiter
//! therefore budgets the *increment* of each proposal over the node's
//! floor; a tick whose floors alone exceed the budget is infeasible and
//! is counted rather than hidden.

/// How the arbiter resolves a proposal that does not fit the tick's
/// remaining budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetPolicy {
    /// Drop the node to its idle floor for the tick; the proposal is
    /// consumed (that node-minute of work is lost).
    #[default]
    ShedToFloor,
    /// Emit the idle floor for the tick but keep the proposal queued:
    /// the node retries it next tick, pushing the episode's remaining
    /// ticks later in wall time. Proposals still queued when the node's
    /// horizon ends are dropped and counted as truncated.
    Defer,
}

impl BudgetPolicy {
    /// Human-readable policy name (CLI/report spelling).
    pub fn name(self) -> &'static str {
        match self {
            BudgetPolicy::ShedToFloor => "shed-to-floor",
            BudgetPolicy::Defer => "defer",
        }
    }
}

/// One node's proposed tick stream plus its unconditional floor draw.
/// Proposals are stored as two parallel columns so an unbudgeted fleet
/// can move `watts` straight into its sample output with zero copies.
/// The node emits exactly `watts.len()` samples (its horizon); under
/// [`BudgetPolicy::Defer`] the cursor into the stream can lag behind
/// the tick index.
#[derive(Debug, Clone)]
pub struct NodeStream {
    /// The node's idle-floor draw, W (drawn even when shed).
    pub floor_w: f64,
    /// Composed node power per proposed tick if admitted, W (idle
    /// floor plus duty-cycled payload power, already clamped at the
    /// facility cap).
    pub watts: Vec<f64>,
    /// Telemetry state index per proposed tick (0 = idle floor, `1..`
    /// = job classes in mix order). Same length as `watts`.
    pub states: Vec<u16>,
}

/// Per-tick outcome for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Emit proposal `i` of the node's stream.
    Admit(u32),
    /// Emit the idle floor (shed, deferred, or stream exhausted).
    Floor,
}

/// The deterministic result of one arbitration pass.
#[derive(Debug, Clone)]
pub struct Arbitration {
    /// Per-node, per-tick decisions; `decisions[n].len()` equals node
    /// `n`'s horizon.
    pub decisions: Vec<Vec<Decision>>,
    /// Fleet draw per synchronized tick, W (floors plus admitted
    /// increments; infeasible ticks report their true over-budget sum).
    pub tick_draw_w: Vec<f64>,
    /// Per-state count of proposals shed to the floor
    /// ([`BudgetPolicy::ShedToFloor`] only).
    pub shed_ticks: Vec<u64>,
    /// Per-state count of tick-denials that deferred a proposal; one
    /// proposal can be deferred on several consecutive ticks
    /// ([`BudgetPolicy::Defer`] only).
    pub deferred_ticks: Vec<u64>,
    /// Proposals still queued when their node's horizon ended (defer
    /// pushed them past the end of the run).
    pub truncated_proposals: u64,
    /// Ticks whose unconditional floor draws alone exceeded the budget
    /// (no proposal can be admitted; the budget is infeasible there).
    pub infeasible_floor_ticks: u64,
}

/// Serial, node-id-ordered fold admitting proposals against a per-tick
/// fleet budget. Earlier node ids get first claim on each tick's
/// headroom — a fixed priority that keeps the fold deterministic.
///
/// `n_states` sizes the per-state counters (index 0 = floor, then the
/// job classes); every `NodeStream::states` entry must be below it.
pub fn arbitrate(
    nodes: &[NodeStream],
    budget_w: f64,
    policy: BudgetPolicy,
    n_states: usize,
) -> Arbitration {
    assert!(
        budget_w.is_finite() && budget_w > 0.0,
        "budget must be a positive wattage, got {budget_w}"
    );
    // Validate the streams once up front; the per-tick fold can then
    // index the counters unchecked (a deferred proposal would
    // otherwise be re-validated on every denial tick).
    for node in nodes {
        assert_eq!(
            node.watts.len(),
            node.states.len(),
            "proposal columns out of sync"
        );
        for (&s, &w) in node.states.iter().zip(&node.watts) {
            assert!(
                (s as usize) < n_states,
                "proposal state {s} out of range ({n_states} states)"
            );
            // A proposal below the floor would make tick_draw_w (which
            // books floor_w + max(0, increment)) disagree with the
            // emitted sample; the floor is the minimum draw by
            // definition.
            assert!(
                w >= node.floor_w,
                "proposal {w} W below the node floor {} W",
                node.floor_w
            );
        }
    }
    let max_ticks = nodes.iter().map(|n| n.watts.len()).max().unwrap_or(0);
    let mut cursor = vec![0usize; nodes.len()];
    let mut decisions: Vec<Vec<Decision>> = nodes
        .iter()
        .map(|n| Vec::with_capacity(n.watts.len()))
        .collect();
    let mut tick_draw_w = Vec::with_capacity(max_ticks);
    let mut shed_ticks = vec![0u64; n_states];
    let mut deferred_ticks = vec![0u64; n_states];
    let mut infeasible_floor_ticks = 0u64;
    for t in 0..max_ticks {
        // Floors first: they are drawn no matter what gets admitted.
        let base: f64 = nodes
            .iter()
            .filter(|n| t < n.watts.len())
            .map(|n| n.floor_w)
            .sum();
        let mut remaining = budget_w - base;
        if remaining < 0.0 {
            infeasible_floor_ticks += 1;
            remaining = 0.0;
        }
        let mut draw = base;
        for (i, node) in nodes.iter().enumerate() {
            if t >= node.watts.len() {
                continue;
            }
            match node.watts.get(cursor[i]) {
                // Defer pushed the whole remaining stream past the
                // cursor; the node idles out its horizon.
                None => decisions[i].push(Decision::Floor),
                Some(&w) => {
                    let inc = (w - node.floor_w).max(0.0);
                    if inc <= remaining {
                        remaining -= inc;
                        draw += inc;
                        // fs2-lint: allow(checked-cast) -- cursor indexes a per-node tick window (u32 samples); hot arbitrate loop
                        decisions[i].push(Decision::Admit(cursor[i] as u32));
                        cursor[i] += 1;
                    } else {
                        let state = node.states[cursor[i]] as usize;
                        decisions[i].push(Decision::Floor);
                        match policy {
                            BudgetPolicy::ShedToFloor => {
                                shed_ticks[state] += 1;
                                cursor[i] += 1;
                            }
                            BudgetPolicy::Defer => {
                                deferred_ticks[state] += 1;
                            }
                        }
                    }
                }
            }
        }
        tick_draw_w.push(draw);
    }
    let truncated_proposals = nodes
        .iter()
        .zip(&cursor)
        .map(|(n, &c)| (n.watts.len() - c) as u64)
        .sum();
    Arbitration {
        decisions,
        tick_draw_w,
        shed_ticks,
        deferred_ticks,
        truncated_proposals,
        infeasible_floor_ticks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(floor_w: f64, watts: &[f64]) -> NodeStream {
        NodeStream {
            floor_w,
            watts: watts.to_vec(),
            states: vec![1; watts.len()],
        }
    }

    /// Replays decisions into emitted per-tick node draws.
    fn emit(nodes: &[NodeStream], arb: &Arbitration) -> Vec<Vec<f64>> {
        nodes
            .iter()
            .zip(&arb.decisions)
            .map(|(n, ds)| {
                ds.iter()
                    .map(|d| match d {
                        Decision::Admit(i) => n.watts[*i as usize],
                        Decision::Floor => n.floor_w,
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn earlier_node_ids_claim_headroom_first() {
        let nodes = vec![node(1.0, &[3.0]), node(1.0, &[3.0])];
        let arb = arbitrate(&nodes, 4.0, BudgetPolicy::ShedToFloor, 2);
        // Base 2.0, headroom 2.0: node 0's +2.0 fits, node 1's does not.
        assert_eq!(arb.decisions[0], vec![Decision::Admit(0)]);
        assert_eq!(arb.decisions[1], vec![Decision::Floor]);
        assert_eq!(arb.tick_draw_w, vec![4.0]);
        assert_eq!(arb.shed_ticks, vec![0, 1]);
        assert_eq!(arb.infeasible_floor_ticks, 0);
    }

    #[test]
    fn shed_consumes_the_proposal_defer_retries_it() {
        // Node 0 has a one-tick horizon; node 1 proposes a hot tick
        // that only fits once node 0 has dropped off the fleet.
        let nodes = vec![node(1.0, &[4.0]), node(1.0, &[3.5, 1.5])];
        let shed = arbitrate(&nodes, 5.0, BudgetPolicy::ShedToFloor, 2);
        // Tick 0: base 2, node 0 admits +3, node 1's +2.5 is shed.
        // Tick 1: node 0 inactive; node 1's next proposal (+0.5) fits.
        assert_eq!(shed.decisions[1], vec![Decision::Floor, Decision::Admit(1)]);
        assert_eq!(shed.shed_ticks[1], 1);
        assert_eq!(shed.truncated_proposals, 0);

        let defer = arbitrate(&nodes, 5.0, BudgetPolicy::Defer, 2);
        // Same tick 0, but the 3.5 W proposal is retried and admitted
        // on tick 1 (base is 1.0 once node 0's horizon ends).
        assert_eq!(
            defer.decisions[1],
            vec![Decision::Floor, Decision::Admit(0)]
        );
        assert_eq!(defer.deferred_ticks[1], 1);
        // The 1.5 W proposal never ran: pushed past the horizon.
        assert_eq!(defer.truncated_proposals, 1);
    }

    #[test]
    fn fleet_draw_never_exceeds_a_feasible_budget() {
        let nodes: Vec<NodeStream> = (0..7)
            .map(|i| {
                let w: Vec<f64> = (0..40)
                    .map(|t| 2.0 + ((i * 13 + t * 7) % 17) as f64)
                    .collect();
                node(2.0, &w)
            })
            .collect();
        for policy in [BudgetPolicy::ShedToFloor, BudgetPolicy::Defer] {
            let arb = arbitrate(&nodes, 40.0, policy, 2);
            assert_eq!(arb.infeasible_floor_ticks, 0);
            for (t, &draw) in arb.tick_draw_w.iter().enumerate() {
                assert!(draw <= 40.0 + 1e-12, "tick {t}: draw {draw} over budget");
            }
            // The recorded per-tick draw matches the emitted samples.
            let emitted = emit(&nodes, &arb);
            for (t, &draw) in arb.tick_draw_w.iter().enumerate() {
                let sum: f64 = emitted.iter().filter_map(|s| s.get(t)).sum();
                assert!((sum - draw).abs() < 1e-9, "tick {t}: {sum} != {draw}");
            }
        }
    }

    #[test]
    fn floor_only_proposals_are_always_admitted() {
        // A proposal at the floor has zero increment and always fits,
        // even with zero headroom.
        let nodes = vec![node(3.0, &[3.0, 3.0])];
        let arb = arbitrate(&nodes, 3.0, BudgetPolicy::ShedToFloor, 2);
        assert_eq!(
            arb.decisions[0],
            vec![Decision::Admit(0), Decision::Admit(1)]
        );
        assert_eq!(arb.shed_ticks, vec![0, 0]);
    }

    #[test]
    fn infeasible_floors_are_counted_not_hidden() {
        let nodes = vec![node(3.0, &[5.0]), node(3.0, &[5.0])];
        let arb = arbitrate(&nodes, 5.0, BudgetPolicy::ShedToFloor, 2);
        assert_eq!(arb.infeasible_floor_ticks, 1);
        // Floors alone already bust the budget; the honest sum is kept.
        assert_eq!(arb.tick_draw_w, vec![6.0]);
        assert_eq!(arb.decisions[0], vec![Decision::Floor]);
        assert_eq!(arb.decisions[1], vec![Decision::Floor]);
    }

    #[test]
    fn heterogeneous_horizons_keep_output_lengths() {
        let nodes = vec![node(1.0, &[2.0]), node(1.0, &[2.0, 2.0, 2.0])];
        let arb = arbitrate(&nodes, 100.0, BudgetPolicy::Defer, 2);
        assert_eq!(arb.decisions[0].len(), 1);
        assert_eq!(arb.decisions[1].len(), 3);
        assert_eq!(arb.tick_draw_w.len(), 3);
        // A wide-open budget admits everything in order.
        assert!(arb
            .decisions
            .iter()
            .flatten()
            .all(|d| matches!(d, Decision::Admit(_))));
    }

    #[test]
    fn arbitration_is_deterministic() {
        let nodes: Vec<NodeStream> = (0..5)
            .map(|i| node(1.0, &[2.0 + i as f64, 4.0, 1.0 + i as f64]))
            .collect();
        let a = arbitrate(&nodes, 9.0, BudgetPolicy::Defer, 2);
        let b = arbitrate(&nodes, 9.0, BudgetPolicy::Defer, 2);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.tick_draw_w, b.tick_draw_w);
    }
}
