//! Job/utilization classes and the fleet workload mix.
//!
//! Earlier revisions drew node power from per-class normal
//! distributions — distribution *fitting* rather than workload
//! *cloning*. A [`JobClass`] now names a concrete payload (an
//! access-group spec evaluated through the node's `fs2_core::Engine`),
//! the P-states the scheduler may run it at, and a duty-cycle band: the
//! fraction of the 60 s averaging window the payload actually executes,
//! with the remainder decaying to the node's idle floor. Every watt a
//! fleet sample reports traces back to the engine's payload→power
//! pipeline.

use rand::rngs::StdRng;
use rand::Rng;

/// A utilization class: a workload spec, the P-states it runs at, and
/// how much of the 60 s window it occupies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobClass {
    pub name: &'static str,
    /// Access-group spec (the Eq. 1 string) for the active phase,
    /// evaluated through the node engine.
    pub spec: &'static str,
    /// Duty-cycle band `[lo, hi)`: fraction of the window spent
    /// executing the payload; the rest idles at the node floor. One
    /// duty is drawn uniformly per 60 s sample.
    pub duty: (f64, f64),
    /// Indices into the SKU's P-state table the scheduler may select
    /// for this class; one is drawn per sample.
    pub pstates: &'static [usize],
}

impl JobClass {
    /// Panics if the class cannot be sampled (empty duty band or
    /// P-state list, duty outside `[0, 1]`).
    pub fn validate(&self) {
        assert!(
            self.duty.0 < self.duty.1,
            "{}: duty band {:?} is empty",
            self.name,
            self.duty
        );
        assert!(
            (0.0..=1.0).contains(&self.duty.0) && self.duty.1 <= 1.0 + 1e-12,
            "{}: duty band {:?} outside [0, 1]",
            self.name,
            self.duty
        );
        assert!(!self.pstates.is_empty(), "{}: no P-states", self.name);
    }

    /// Draws one duty cycle from the band.
    pub fn draw_duty(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.duty.0..self.duty.1)
    }

    /// Draws one P-state index (into the SKU table) from the band.
    pub fn draw_pstate(&self, rng: &mut StdRng) -> usize {
        if self.pstates.len() == 1 {
            self.pstates[0]
        } else {
            self.pstates[rng.gen_range(0..self.pstates.len())]
        }
    }
}

/// A weighted mix of job classes — the fleet's duty profile.
#[derive(Debug, Clone)]
pub struct JobMix {
    /// `(class, fraction_of_node_hours)`.
    classes: Vec<(JobClass, f64)>,
    /// Total weight, hoisted out of the per-draw hot loop.
    total: f64,
}

impl JobMix {
    /// Builds a mix; weights need not sum to 1 but must be non-negative
    /// with a positive total.
    pub fn new(classes: Vec<(JobClass, f64)>) -> JobMix {
        assert!(!classes.is_empty(), "mix must have at least one class");
        for (class, w) in &classes {
            class.validate();
            assert!(*w >= 0.0, "{}: negative weight {w}", class.name);
        }
        let total: f64 = classes.iter().map(|(_, f)| f).sum();
        assert!(total > 0.0, "mix needs positive total weight");
        JobMix { classes, total }
    }

    /// The classes and their weights.
    pub fn classes(&self) -> &[(JobClass, f64)] {
        &self.classes
    }

    /// The Taurus Haswell-partition profile behind Fig. 1: a large
    /// idle/low-utilization share (the 50–100 W shoulder), moderate
    /// compute, and a thin full-power tail reaching 359.9 W. P-state
    /// indices refer to the Haswell SKU tables (0 = nominal, 2 = min).
    pub fn taurus_haswell() -> JobMix {
        JobMix::new(vec![
            (
                JobClass {
                    name: "idle",
                    spec: "REG:1",
                    duty: (0.0, 0.06),
                    pstates: &[2],
                },
                0.30,
            ),
            (
                JobClass {
                    name: "low",
                    spec: "REG:2,L1_L:1",
                    duty: (0.05, 0.35),
                    pstates: &[2],
                },
                0.25,
            ),
            (
                JobClass {
                    name: "medium",
                    spec: "REG:4,L1_2LS:2,L2_LS:1",
                    duty: (0.35, 0.75),
                    pstates: &[1, 2],
                },
                0.22,
            ),
            (
                JobClass {
                    name: "high",
                    spec: "REG:6,L1_2LS:3,L2_LS:1,L3_LS:1",
                    duty: (0.80, 1.0),
                    pstates: &[0, 1],
                },
                0.20,
            ),
            (
                JobClass {
                    name: "peak",
                    spec: "REG:8,L1_2LS:4,L2_LS:1,L3_LS:1,RAM_LS:1",
                    duty: (0.95, 1.0),
                    pstates: &[0],
                },
                0.03,
            ),
        ])
    }

    /// Validates that fractions form a distribution.
    pub fn total_fraction(&self) -> f64 {
        self.total
    }

    /// Draws the class index for one node-minute.
    pub fn pick_idx(&self, rng: &mut StdRng) -> usize {
        self.pick_weighted(rng.gen_range(0.0..self.total))
    }

    /// Draws the class for one node-minute.
    pub fn pick<'a>(&'a self, rng: &mut StdRng) -> &'a JobClass {
        &self.classes[self.pick_idx(rng)].0
    }

    /// Maps a draw `x ∈ [0, total]` to a class index. Floating-point
    /// rounding can leave `x` at or past the last positive weight; the
    /// fallthrough must land on the last class that can actually occur,
    /// never on a trailing zero-weight class.
    fn pick_weighted(&self, mut x: f64) -> usize {
        let mut last_weighted = 0;
        for (i, (_, frac)) in self.classes.iter().enumerate() {
            if *frac > 0.0 {
                if x < *frac {
                    return i;
                }
                last_weighted = i;
            }
            x -= frac;
        }
        last_weighted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn taurus_mix_is_normalized() {
        let mix = JobMix::taurus_haswell();
        assert!((mix.total_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(mix.classes().len(), 5);
    }

    #[test]
    fn classes_are_engine_evaluable_specs() {
        // Every class spec must parse under the Eq. 1 grammar; the
        // fleet feeds them straight into the engine registry.
        for (class, _) in JobMix::taurus_haswell().classes() {
            assert!(
                fs2_core::parse_groups(class.spec).is_ok(),
                "{}: bad spec {}",
                class.name,
                class.spec
            );
            class.validate();
        }
    }

    #[test]
    fn class_frequencies_match_fractions() {
        let mix = JobMix::taurus_haswell();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mut idle = 0u32;
        for _ in 0..n {
            if mix.pick(&mut rng).name == "idle" {
                idle += 1;
            }
        }
        let frac = f64::from(idle) / f64::from(n);
        assert!((frac - 0.30).abs() < 0.01, "idle fraction {frac}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mix = JobMix::taurus_haswell();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let ca = mix.pick(&mut a);
            let cb = mix.pick(&mut b);
            assert_eq!(ca.name, cb.name);
            assert_eq!(ca.draw_duty(&mut a), cb.draw_duty(&mut b));
            assert_eq!(ca.draw_pstate(&mut a), cb.draw_pstate(&mut b));
        }
    }

    #[test]
    fn duty_draws_stay_in_band() {
        let mix = JobMix::taurus_haswell();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20_000 {
            let class = mix.pick(&mut rng);
            let duty = class.draw_duty(&mut rng);
            assert!(
                (class.duty.0..class.duty.1).contains(&duty),
                "{}: duty {duty} outside {:?}",
                class.name,
                class.duty
            );
            let p = class.draw_pstate(&mut rng);
            assert!(class.pstates.contains(&p));
        }
    }

    #[test]
    fn zero_weight_trailing_class_is_never_picked() {
        // Regression: the old fallthrough returned `classes.last()`
        // unconditionally, so a rounding draw at x == total could hand
        // out a class with weight 0.0.
        let dummy = |name: &'static str| JobClass {
            name,
            spec: "REG:1",
            duty: (0.0, 0.1),
            pstates: &[0],
        };
        let mix = JobMix::new(vec![
            (dummy("a"), 0.1),
            (dummy("b"), 0.2),
            (dummy("disabled"), 0.0),
        ]);
        // Exact-total and past-total draws (what fp rounding produces)
        // must land on the last *weighted* class.
        assert_eq!(mix.pick_weighted(mix.total_fraction()), 1);
        assert_eq!(mix.pick_weighted(mix.total_fraction() + 1.0), 1);
        assert_eq!(mix.pick_weighted(f64::INFINITY), 1);
        // And ordinary draws never produce it either.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50_000 {
            assert_ne!(mix.pick(&mut rng).name, "disabled");
        }
    }

    #[test]
    fn zero_weight_middle_class_is_skipped() {
        let dummy = |name: &'static str| JobClass {
            name,
            spec: "REG:1",
            duty: (0.0, 0.1),
            pstates: &[0],
        };
        let mix = JobMix::new(vec![
            (dummy("a"), 0.5),
            (dummy("disabled"), 0.0),
            (dummy("c"), 0.5),
        ]);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [0u32; 3];
        for _ in 0..10_000 {
            seen[mix.pick_idx(&mut rng)] += 1;
        }
        assert_eq!(seen[1], 0);
        assert!(seen[0] > 4_000 && seen[2] > 4_000);
    }
}
