//! Job/utilization classes and the fleet workload mix.

use rand::rngs::StdRng;
use rand::Rng;

/// A utilization class with a characteristic node-power distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobClass {
    pub name: &'static str,
    /// Mean node power while running this class, W.
    pub mean_w: f64,
    /// Standard deviation, W.
    pub stddev_w: f64,
    /// Hard cap (physical limit of the node), W.
    pub cap_w: f64,
}

impl JobClass {
    /// Draws one 60 s-mean power sample (truncated normal via clamping).
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        // Box–Muller from two uniforms; StdRng is seeded by the fleet.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mean_w + z * self.stddev_w).clamp(self.mean_w * 0.5, self.cap_w)
    }
}

/// A weighted mix of job classes — the fleet's duty profile.
#[derive(Debug, Clone)]
pub struct JobMix {
    /// `(class, fraction_of_node_hours)`; fractions sum to 1.
    pub classes: Vec<(JobClass, f64)>,
}

impl JobMix {
    /// The Taurus Haswell-partition profile behind Fig. 1: a large idle /
    /// low-utilization share (the 50–100 W shoulder), moderate compute,
    /// and a thin full-power tail reaching 359.9 W.
    pub fn taurus_haswell() -> JobMix {
        JobMix {
            classes: vec![
                (
                    JobClass {
                        name: "idle",
                        mean_w: 72.0,
                        stddev_w: 4.0,
                        cap_w: 359.9,
                    },
                    0.30,
                ),
                (
                    JobClass {
                        name: "low",
                        mean_w: 95.0,
                        stddev_w: 9.0,
                        cap_w: 359.9,
                    },
                    0.25,
                ),
                (
                    JobClass {
                        name: "medium",
                        mean_w: 160.0,
                        stddev_w: 28.0,
                        cap_w: 359.9,
                    },
                    0.22,
                ),
                (
                    JobClass {
                        name: "high",
                        mean_w: 240.0,
                        stddev_w: 35.0,
                        cap_w: 359.9,
                    },
                    0.20,
                ),
                (
                    JobClass {
                        name: "peak",
                        mean_w: 330.0,
                        stddev_w: 18.0,
                        cap_w: 359.9,
                    },
                    0.03,
                ),
            ],
        }
    }

    /// Validates that fractions form a distribution.
    pub fn total_fraction(&self) -> f64 {
        self.classes.iter().map(|(_, f)| f).sum()
    }

    /// Draws the class for one node-minute.
    pub fn pick<'a>(&'a self, rng: &mut StdRng) -> &'a JobClass {
        let mut x: f64 = rng.gen_range(0.0..self.total_fraction());
        for (class, frac) in &self.classes {
            if x < *frac {
                return class;
            }
            x -= frac;
        }
        &self.classes.last().expect("non-empty mix").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn taurus_mix_is_normalized() {
        let mix = JobMix::taurus_haswell();
        assert!((mix.total_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(mix.classes.len(), 5);
    }

    #[test]
    fn samples_respect_the_cap() {
        let mix = JobMix::taurus_haswell();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20_000 {
            let c = mix.pick(&mut rng);
            let p = c.sample(&mut rng);
            assert!(p <= 359.9 + 1e-9, "sample {p} exceeds cap");
            assert!(p > 30.0, "sample {p} implausibly low");
        }
    }

    #[test]
    fn class_frequencies_match_fractions() {
        let mix = JobMix::taurus_haswell();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mut idle = 0u32;
        for _ in 0..n {
            if mix.pick(&mut rng).name == "idle" {
                idle += 1;
            }
        }
        let frac = f64::from(idle) / f64::from(n);
        assert!((frac - 0.30).abs() < 0.01, "idle fraction {frac}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mix = JobMix::taurus_haswell();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let ca = mix.pick(&mut a).sample(&mut a);
            let cb = mix.pick(&mut b).sample(&mut b);
            assert_eq!(ca, cb);
        }
    }
}
