//! RAPL-style energy counters.
//!
//! FIRESTARTER's most convenient built-in power metric reads the Intel
//! RAPL energy counters through sysfs (`energy_uj`, wrapping at
//! `max_energy_range_uj`). The paper notes RAPL is accurate on
//! Haswell-and-later Intel parts but less accurate on AMD (Rome exposes
//! only the core domain, missing IO-die and DRAM power) — we model that
//! too, so the metric stack exercises the same caveats.

use crate::model::PowerBreakdown;

/// sysfs-powercap style wrap bound (2³² µJ ≈ 4.29 kJ).
pub const MAX_ENERGY_RANGE_UJ: u64 = u32::MAX as u64;

/// One energy-counter domain (package, core, …).
#[derive(Debug, Clone, Default)]
pub struct RaplDomain {
    energy_uj: u64,
}

impl RaplDomain {
    /// Adds `power_w` integrated over `dt_s` seconds.
    pub fn accumulate(&mut self, power_w: f64, dt_s: f64) {
        assert!(dt_s >= 0.0 && power_w >= 0.0);
        let add_uj = (power_w * dt_s * 1e6).round() as u64;
        self.energy_uj = (self.energy_uj + add_uj) % (MAX_ENERGY_RANGE_UJ + 1);
    }

    /// Current counter value in µJ (wraps like the sysfs file).
    pub fn energy_uj(&self) -> u64 {
        self.energy_uj
    }
}

/// Per-socket RAPL counters with package and core domains.
#[derive(Debug, Clone)]
pub struct Rapl {
    /// Package domains, one per socket.
    pub package: Vec<RaplDomain>,
    /// Core (PP0) domains, one per socket.
    pub core: Vec<RaplDomain>,
    /// AMD Rome quirk: RAPL covers only the core domain; package reads
    /// under-report by the uncore+DRAM share (§III-C accuracy remark).
    pub amd_core_only: bool,
}

impl Rapl {
    pub fn new(sockets: u32, amd_core_only: bool) -> Rapl {
        Rapl {
            package: vec![RaplDomain::default(); sockets as usize],
            core: vec![RaplDomain::default(); sockets as usize],
            amd_core_only,
        }
    }

    /// Integrates a node power breakdown over `dt_s` seconds, splitting
    /// evenly across sockets.
    pub fn accumulate(&mut self, p: &PowerBreakdown, dt_s: f64) {
        let sockets = self.package.len() as f64;
        let core_w = (p.core_dynamic_w + p.core_static_w) / sockets;
        // What "package" covers depends on the vendor: Intel includes
        // uncore; AMD Rome effectively reports cores only.
        let pkg_w = if self.amd_core_only {
            core_w
        } else {
            core_w + p.uncore_w / sockets
        };
        for d in &mut self.package {
            d.accumulate(pkg_w, dt_s);
        }
        for d in &mut self.core {
            d.accumulate(core_w, dt_s);
        }
    }

    /// Sum of package counters, µJ.
    pub fn package_energy_uj(&self) -> u64 {
        self.package.iter().map(RaplDomain::energy_uj).sum()
    }
}

/// Computes average power between two counter reads, handling wrap.
#[derive(Debug, Clone, Copy)]
pub struct RaplReader {
    last_uj: u64,
    last_t_s: f64,
}

impl RaplReader {
    /// Starts a window at the given counter value and timestamp.
    pub fn start(counter_uj: u64, t_s: f64) -> RaplReader {
        RaplReader {
            last_uj: counter_uj,
            last_t_s: t_s,
        }
    }

    /// Ends the window, returning average watts since the last read and
    /// re-arming for the next window.
    pub fn sample(&mut self, counter_uj: u64, t_s: f64) -> f64 {
        let dt = t_s - self.last_t_s;
        if dt <= 0.0 {
            return 0.0;
        }
        let delta = if counter_uj >= self.last_uj {
            counter_uj - self.last_uj
        } else {
            // One wrap.
            counter_uj + (MAX_ENERGY_RANGE_UJ + 1) - self.last_uj
        };
        self.last_uj = counter_uj;
        self.last_t_s = t_s;
        delta as f64 * 1e-6 / dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_read() {
        let mut d = RaplDomain::default();
        d.accumulate(100.0, 1.0); // 100 J = 1e8 µJ
        assert_eq!(d.energy_uj(), 100_000_000);
        d.accumulate(50.0, 2.0); // +100 J
        assert_eq!(d.energy_uj(), 200_000_000);
    }

    #[test]
    fn counter_wraps_like_sysfs() {
        let mut d = RaplDomain::default();
        // 4.29 kJ capacity; add 5 kJ.
        d.accumulate(5000.0, 1.0);
        assert!(d.energy_uj() <= MAX_ENERGY_RANGE_UJ);
    }

    #[test]
    fn reader_handles_wrap() {
        let mut d = RaplDomain::default();
        d.accumulate(4000.0, 1.0); // near the wrap point
        let mut reader = RaplReader::start(d.energy_uj(), 0.0);
        d.accumulate(600.0, 1.0); // wraps
        let w = reader.sample(d.energy_uj(), 1.0);
        assert!((w - 600.0).abs() < 1.0, "avg power = {w}");
    }

    #[test]
    fn reader_zero_dt_is_safe() {
        let mut r = RaplReader::start(100, 5.0);
        assert_eq!(r.sample(200, 5.0), 0.0);
    }

    #[test]
    fn amd_core_only_underreports() {
        let p = PowerBreakdown {
            platform_w: 55.0,
            uncore_w: 60.0,
            core_static_w: 40.0,
            core_dynamic_w: 140.0,
            dram_w: 30.0,
            external_w: 0.0,
            core_rail_amps_per_socket: 0.0,
            socket_power_w: 0.0,
        };
        let mut amd = Rapl::new(2, true);
        let mut intel = Rapl::new(2, false);
        amd.accumulate(&p, 1.0);
        intel.accumulate(&p, 1.0);
        // AMD package counters miss the uncore share.
        assert!(amd.package_energy_uj() < intel.package_energy_uj());
        // Neither covers platform or DRAM fully — RAPL < wall power.
        let wall_uj = (p.total_w() * 1e6) as u64;
        assert!(intel.package_energy_uj() < wall_uj);
    }
}
