//! # fs2-power — node power model
//!
//! The paper measures node AC power with a ZES LMG95 meter and package
//! power via RAPL. This crate is the measurement substitute: a calibrated
//! static+dynamic power model evaluated on top of `fs2-sim` steady states.
//!
//! * [`coeffs`] — per-microarchitecture energy coefficients (nJ per µop
//!   class, nJ per byte per memory level, clock-tree energy per cycle,
//!   static/idle terms) at a reference voltage, scaled by `(V/Vref)²`.
//! * [`model`] — composes a [`fs2_sim::NodeSteadyState`] into a
//!   [`model::PowerBreakdown`] (platform / uncore / core static / core
//!   dynamic / DRAM), including the FMA clock-gating effect for trivial
//!   operands (§III-D).
//! * [`edc`] — the electrical-design-current throttle loop of §IV-E:
//!   finds the highest 25 MHz-quantized frequency whose core-rail current
//!   stays within the SKU's EDC limit (the mechanism behind Fig. 8's
//!   2.5 → 2.4 GHz dip and Fig. 12c's sub-nominal applied frequencies).
//! * [`rapl`] — Running-Average-Power-Limit style energy counters with
//!   wrap-around semantics and a window-averaging reader, mirroring the
//!   sysfs interface the built-in power metric uses on real hardware.
//!
//! Calibration targets (landmarks from the paper) are documented per
//! coefficient set in [`coeffs`]; the `calibration` integration test pins
//! them with tolerance bands.

pub mod coeffs;
pub mod edc;
pub mod model;
pub mod rapl;

pub use coeffs::PowerCoeffs;
pub use edc::{solve_throttle, ThrottleResult};
pub use model::{ClassCounts, NodePowerModel, PowerBreakdown};
pub use rapl::{Rapl, RaplReader};
