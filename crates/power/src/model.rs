//! Node power composition.

use crate::coeffs::PowerCoeffs;
use fs2_arch::pipeline::FetchSource;
use fs2_arch::{MemLevel, Sku};
use fs2_isa::meta::UopClass;
use fs2_sim::{Kernel, NodeSteadyState};

/// Instruction counts of one kernel iteration, bucketed by energy class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    pub fma: u64,
    pub mul: u64,
    pub add: u64,
    pub veclogic: u64,
    pub sqrt: u64,
    pub scalar: u64,
    pub alu: u64,
    pub branch: u64,
    pub nop: u64,
    pub load: u64,
    pub store: u64,
    pub prefetch: u64,
}

impl ClassCounts {
    /// Buckets every instruction of the kernel body.
    pub fn of(kernel: &Kernel) -> ClassCounts {
        let mut c = ClassCounts::default();
        for t in &kernel.body {
            match fs2_isa::meta::meta(&t.inst).class {
                UopClass::FpFma256 => c.fma += 1,
                UopClass::FpMul256 => c.mul += 1,
                UopClass::FpAdd256 => c.add += 1,
                UopClass::VecLogic256 => c.veclogic += 1,
                UopClass::FpSqrt64 => c.sqrt += 1,
                UopClass::FpScalar64 => c.scalar += 1,
                UopClass::AluLight => c.alu += 1,
                UopClass::Branch => c.branch += 1,
                UopClass::Nop => c.nop += 1,
                UopClass::Load256 => c.load += 1,
                UopClass::Store256 => c.store += 1,
                UopClass::Prefetch => c.prefetch += 1,
            }
        }
        c
    }
}

/// Decomposed node power, watts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Board constants (fans, VRs, disks).
    pub platform_w: f64,
    /// All sockets' uncore/IO-die.
    pub uncore_w: f64,
    /// All cores' static/leakage.
    pub core_static_w: f64,
    /// All cores' dynamic (switching) power.
    pub core_dynamic_w: f64,
    /// DRAM background + access energy.
    pub dram_w: f64,
    /// External devices (GPUs) attached by the caller.
    pub external_w: f64,
    /// Core-rail current per socket in amperes (drives EDC throttling).
    pub core_rail_amps_per_socket: f64,
    /// Package power per socket in watts (drives PPT throttling):
    /// cores + uncore + DRAM-access share of one socket.
    pub socket_power_w: f64,
}

impl PowerBreakdown {
    /// Total node power in watts.
    pub fn total_w(&self) -> f64 {
        self.platform_w
            + self.uncore_w
            + self.core_static_w
            + self.core_dynamic_w
            + self.dram_w
            + self.external_w
    }

    /// Adds external device power (e.g. GPUs) and returns self.
    pub fn with_external(mut self, watts: f64) -> PowerBreakdown {
        self.external_w += watts;
        self
    }
}

/// The calibrated node power model for one SKU.
#[derive(Debug, Clone)]
pub struct NodePowerModel {
    sku: Sku,
    coeffs: PowerCoeffs,
}

impl NodePowerModel {
    pub fn new(sku: Sku) -> NodePowerModel {
        let coeffs = PowerCoeffs::for_uarch(sku.uarch);
        NodePowerModel { sku, coeffs }
    }

    pub fn with_coeffs(sku: Sku, coeffs: PowerCoeffs) -> NodePowerModel {
        NodePowerModel { sku, coeffs }
    }

    pub fn sku(&self) -> &Sku {
        &self.sku
    }

    pub fn coeffs(&self) -> &PowerCoeffs {
        &self.coeffs
    }

    /// Node power with every core in its deepest idle state (the Fig. 2
    /// "Idle (C-States enabled)" bar).
    pub fn idle_power(&self) -> PowerBreakdown {
        let c = &self.coeffs;
        let sockets = f64::from(self.sku.topology.sockets);
        let cores = f64::from(self.sku.topology.total_cores());
        PowerBreakdown {
            platform_w: c.platform_static_w,
            uncore_w: c.uncore_idle_w * sockets,
            core_static_w: 0.0, // folded into core_idle for gated cores
            core_dynamic_w: c.core_idle_w * cores,
            dram_w: c.dram_static_w * sockets,
            external_w: 0.0,
            core_rail_amps_per_socket: 0.0,
            socket_power_w: c.uncore_idle_w
                + (c.core_idle_w * cores + c.dram_static_w * sockets) / sockets,
        }
    }

    /// Node power for a workload steady state.
    ///
    /// `trivial_fraction` is the share of FP lane operations with trivial
    /// operands (from [`fs2_sim::Executor`]); it scales down FMA/MUL/ADD
    /// energy by `fma_gate_factor` (§III-D).
    pub fn workload_power(
        &self,
        node: &NodeSteadyState,
        kernel: &Kernel,
        trivial_fraction: f64,
    ) -> PowerBreakdown {
        let c = &self.coeffs;
        let sku = &self.sku;
        let sockets = f64::from(sku.topology.sockets);
        let total_cores = f64::from(sku.topology.total_cores());
        let active = f64::from(node.active_cores);
        let idle_cores = (total_cores - active).max(0.0);

        let freq_mhz = node.core.freq_mhz;
        let voltage = sku.pstates.voltage_at(freq_mhz);
        let vs = c.vscale(voltage);
        let gate = 1.0 - c.fma_gate_factor * trivial_fraction.clamp(0.0, 1.0);

        let iters = node.core.iters_per_sec; // per active core
        let counts = ClassCounts::of(kernel);
        let n = |x: u64| x as f64 * iters; // events per second per core

        // Arithmetic energy (nJ/s = W when multiplied by 1e-9 · 1e9 = 1).
        let arith_w_nj = n(counts.fma) * c.e_fma256_nj * gate
            + n(counts.mul) * c.e_mul256_nj * gate
            + n(counts.add) * c.e_add256_nj * gate
            + n(counts.veclogic) * c.e_veclogic_nj
            + n(counts.sqrt) * c.e_sqrt_nj
            + n(counts.scalar) * c.e_scalar64_nj
            + n(counts.alu) * c.e_alu_nj
            + n(counts.branch) * c.e_branch_nj
            + n(counts.nop) * c.e_nop_nj
            // LSU per-µop energy: covers explicit loads/stores, FMA-fused
            // loads and prefetches alike (SeqMeta port counts).
            + kernel.meta.load as f64 * iters * c.e_loadop_nj
            + kernel.meta.store as f64 * iters * c.e_storeop_nj;

        // Front-end energy depends on which structure feeds the loop.
        let e_uop = match node.core.fetch_source {
            FetchSource::LoopBuffer => c.e_uop_loopbuf_nj,
            FetchSource::OpCache => c.e_uop_opcache_nj,
            FetchSource::L1i | FetchSource::L2 => c.e_uop_decoder_nj,
        };
        let mut frontend_w_nj = kernel.meta.uops as f64 * iters * e_uop;
        if node.core.fetch_source == FetchSource::L2 {
            // Code streaming from L2 adds cache traffic energy too.
            frontend_w_nj += kernel.code_bytes as f64 * iters * c.e_codefetch_byte_nj;
        }

        // Clock tree runs every cycle, stalled or not.
        let clock_w_nj = freq_mhz * 1e6 * c.e_cycle_nj;

        // Data movement: L1..L3 in the core/CCD voltage domain; DRAM not.
        let bytes = |l: MemLevel| kernel.traffic.bytes(l) as f64 * iters;
        let cache_w_nj = bytes(MemLevel::L1) * c.e_l1_byte_nj
            + bytes(MemLevel::L2) * c.e_l2_byte_nj
            + bytes(MemLevel::L3) * c.e_l3_byte_nj;
        let dram_access_w = bytes(MemLevel::Ram) * c.e_ram_byte_nj * active * 1e-9;

        let per_core_dyn_w = (arith_w_nj + frontend_w_nj + clock_w_nj + cache_w_nj) * vs * 1e-9;
        let core_dynamic_w = per_core_dyn_w * active + c.core_idle_w * idle_cores;
        let core_static_w = c.core_static_w * vs * active;

        // Core-rail current per socket (dynamic + static of that socket's
        // active cores over the rail voltage).
        let active_per_socket = active / sockets;
        let core_rail_amps_per_socket =
            (per_core_dyn_w + c.core_static_w * vs) * active_per_socket / voltage.max(0.1);

        // Package power: cores + uncore + the IMC/IO-die share of DRAM
        // access energy. The DIMM share of `e_ram_byte_nj` sits outside
        // the package domain (it does not count against PPT).
        const IMC_SHARE_OF_DRAM_ACCESS: f64 = 0.35;
        let socket_power_w = (core_dynamic_w
            + core_static_w
            + c.uncore_active_w * sockets
            + c.dram_static_w * sockets
            + dram_access_w * IMC_SHARE_OF_DRAM_ACCESS)
            / sockets;

        PowerBreakdown {
            platform_w: c.platform_static_w,
            uncore_w: c.uncore_active_w * sockets,
            core_static_w,
            core_dynamic_w,
            dram_w: c.dram_static_w * sockets + dram_access_w,
            external_w: 0.0,
            core_rail_amps_per_socket,
            socket_power_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs2_isa::prelude::*;
    use fs2_sim::kernel::TaggedInst;
    use fs2_sim::SystemSim;

    /// Two FMA + two ALU per group — the paper's §IV-B mix, register-only.
    fn reg_kernel(groups: u32) -> Kernel {
        let mut body = Vec::new();
        for g in 0..groups {
            body.push(TaggedInst::reg(Inst::Vfmadd231pd {
                dst: Ymm::new((g % 12) as u8),
                src1: Ymm::new(12),
                src2: RmYmm::Reg(Ymm::new(14)),
            }));
            body.push(TaggedInst::reg(Inst::XorGp {
                dst: Gp::Rax,
                src: Gp::Rbx,
            }));
            body.push(TaggedInst::reg(Inst::Vfmadd231pd {
                dst: Ymm::new(((g + 6) % 12) as u8),
                src1: Ymm::new(13),
                src2: RmYmm::Reg(Ymm::new(15)),
            }));
            body.push(TaggedInst::reg(Inst::ShlImm {
                dst: Gp::Rdx,
                imm: 4,
            }));
        }
        body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
        body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));
        Kernel::new("reg-mix", body, groups)
    }

    fn rome_eval(kernel: &Kernel, freq: f64) -> (NodePowerModel, NodeSteadyState) {
        let sku = Sku::amd_epyc_7502();
        let sim = SystemSim::new(sku.clone());
        let node = sim.evaluate(kernel, freq, None);
        (NodePowerModel::new(sku), node)
    }

    #[test]
    fn class_counts_bucketize() {
        let k = reg_kernel(8);
        let c = ClassCounts::of(&k);
        assert_eq!(c.fma, 16);
        assert_eq!(c.alu, 17); // 16 mix ALU + dec
        assert_eq!(c.branch, 1);
        assert_eq!(c.load + c.store + c.prefetch, 0);
    }

    #[test]
    fn reg_only_at_nominal_is_around_314_w() {
        // §III-D landmark: v2.0 REG:1 at nominal ⇒ 314.1 W.
        let k = reg_kernel(64);
        let (model, node) = rome_eval(&k, 2500.0);
        let p = model.workload_power(&node, &k, 0.0).total_w();
        assert!(
            (280.0..=350.0).contains(&p),
            "REG-only @2500 MHz = {p:.1} W, expected ≈314 W"
        );
    }

    #[test]
    fn v174_gating_loses_single_digit_watts() {
        // §III-D landmark: 314.1 W (v2.0) vs 305.6 W (v1.7.4) ⇒ Δ ≈ 8.5 W.
        let k = reg_kernel(64);
        let (model, node) = rome_eval(&k, 2500.0);
        let healthy = model.workload_power(&node, &k, 0.0).total_w();
        let buggy = model.workload_power(&node, &k, 1.0).total_w();
        let delta = healthy - buggy;
        assert!(
            (4.0..=15.0).contains(&delta),
            "gating delta = {delta:.1} W, expected ≈8.5 W"
        );
    }

    #[test]
    fn reg_only_at_1500_matches_fig9_no_access() {
        // Fig. 9 landmark: "No access" at 1500 MHz ⇒ ≈235 W.
        let k = reg_kernel(64);
        let (model, node) = rome_eval(&k, 1500.0);
        let p = model.workload_power(&node, &k, 0.0).total_w();
        assert!(
            (205.0..=265.0).contains(&p),
            "REG-only @1500 MHz = {p:.1} W, expected ≈235 W"
        );
    }

    #[test]
    fn idle_is_far_below_any_workload() {
        let k = reg_kernel(64);
        let (model, node) = rome_eval(&k, 1500.0);
        let idle = model.idle_power().total_w();
        let load = model.workload_power(&node, &k, 0.0).total_w();
        assert!(idle < load * 0.75, "idle {idle:.1} W vs load {load:.1} W");
        assert!(idle > 80.0, "Rome dual-socket idle unrealistically low");
    }

    #[test]
    fn power_rises_with_frequency() {
        let k = reg_kernel(64);
        let sku = Sku::amd_epyc_7502();
        let sim = SystemSim::new(sku.clone());
        let model = NodePowerModel::new(sku);
        let mut prev = 0.0;
        for f in [1500.0, 2200.0, 2500.0] {
            let node = sim.evaluate(&k, f, None);
            let p = model.workload_power(&node, &k, 0.0).total_w();
            assert!(p > prev, "power not monotonic in frequency at {f} MHz");
            prev = p;
        }
    }

    #[test]
    fn memory_access_energy_adds_power() {
        // A RAM-streaming variant must consume more than register-only
        // (the Fig. 2/9 ladder), even though its IPC is lower.
        let reg = reg_kernel(64);
        let mut body = reg.body.clone();
        // Replace every 4th group's ALU with a RAM load.
        for (i, t) in body.iter_mut().enumerate() {
            if i % 16 == 1 {
                *t = TaggedInst::mem(
                    Inst::VmovapdLoad {
                        dst: Ymm::new(11),
                        src: Mem::base(Gp::Rbx),
                    },
                    MemLevel::Ram,
                );
            }
        }
        let ram = Kernel::new("ram-mix", body, 64);
        let sku = Sku::amd_epyc_7502();
        let sim = SystemSim::new(sku.clone());
        let model = NodePowerModel::new(sku);
        let reg_node = sim.evaluate(&reg, 1500.0, None);
        let ram_node = sim.evaluate(&ram, 1500.0, None);
        let p_reg = model.workload_power(&reg_node, &reg, 0.0).total_w();
        let p_ram = model.workload_power(&ram_node, &ram, 0.0).total_w();
        assert!(
            p_ram > p_reg + 20.0,
            "RAM access energy too small: {p_reg:.1} -> {p_ram:.1} W"
        );
    }

    #[test]
    fn current_scales_with_activity() {
        let k = reg_kernel(64);
        let (model, node) = rome_eval(&k, 2500.0);
        let full = model.workload_power(&node, &k, 0.0);
        assert!(full.core_rail_amps_per_socket > 20.0);
        let sku = Sku::amd_epyc_7502();
        let sim = SystemSim::new(sku);
        let half_node = sim.evaluate(&k, 2500.0, Some(32));
        let half = model.workload_power(&half_node, &k, 0.0);
        assert!(half.core_rail_amps_per_socket < full.core_rail_amps_per_socket);
    }

    #[test]
    fn external_power_composes() {
        let p = PowerBreakdown::default().with_external(116.0);
        assert_eq!(p.total_w(), 116.0);
    }

    #[test]
    fn haswell_idle_matches_fig2_bottom_bar() {
        // Fig. 2 "Idle (C-States enabled)" on the Haswell node: ~70-90 W.
        let model = NodePowerModel::new(Sku::intel_xeon_e5_2680_v3());
        let idle = model.idle_power().total_w();
        assert!((60.0..=95.0).contains(&idle), "Haswell idle = {idle:.1} W");
    }

    #[test]
    fn haswell_full_stress_matches_fig2_top_bar() {
        // Fig. 2 full FIRESTARTER on the Haswell node: ~360 W at 2000 MHz.
        let sku = Sku::intel_xeon_e5_2680_v3();
        let sim = SystemSim::new(sku.clone());
        let model = NodePowerModel::new(sku.clone());
        let mix = fs2_core_free_kernel(&sku);
        let node = sim.evaluate(&mix, 2000.0, None);
        let p = model.workload_power(&node, &mix, 0.0).total_w();
        assert!(
            (310.0..=420.0).contains(&p),
            "Haswell full stress = {p:.1} W, expected ≈360 W"
        );
    }

    /// A dense stress kernel without depending on fs2-core (layering):
    /// 2 FMA + L1 load/store pair + RAM load every 8th group.
    fn fs2_core_free_kernel(_sku: &Sku) -> Kernel {
        use fs2_isa::prelude::*;
        use fs2_sim::kernel::TaggedInst;
        let mut body = Vec::new();
        for g in 0..64u32 {
            body.push(TaggedInst::reg(Inst::Vfmadd231pd {
                dst: Ymm::new((g % 10) as u8),
                src1: Ymm::new(12),
                src2: RmYmm::Reg(Ymm::new(14)),
            }));
            body.push(TaggedInst::mem(
                Inst::VmovapdLoad {
                    dst: Ymm::new(10),
                    src: Mem::base(Gp::Rbx),
                },
                MemLevel::L1,
            ));
            body.push(TaggedInst::reg(Inst::Vfmadd231pd {
                dst: Ymm::new(((g + 5) % 10) as u8),
                src1: Ymm::new(13),
                src2: RmYmm::Reg(Ymm::new(15)),
            }));
            if g % 8 == 0 {
                body.push(TaggedInst::mem(
                    Inst::VmovapdLoad {
                        dst: Ymm::new(11),
                        src: Mem::base(Gp::R8),
                    },
                    MemLevel::Ram,
                ));
            } else {
                body.push(TaggedInst::mem(
                    Inst::VmovapdStore {
                        dst: Mem::base_disp(Gp::Rbx, 32),
                        src: Ymm::new(10),
                    },
                    MemLevel::L1,
                ));
            }
        }
        body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
        body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));
        Kernel::new("haswell-stress", body, 64)
    }
}
