//! Electrical-design-current throttling (§IV-E).
//!
//! Zen 2 reduces core frequency dynamically to avoid peaks that "cause
//! electrical design current (EDC) specifications to be exceeded". The
//! effect in the paper: every optimized workload throttles when run at
//! 2200 or 2500 MHz (Fig. 12c shows applied frequencies of ~2140–2300 MHz)
//! and Fig. 8 shows a 2.5 → 2.4 GHz dip for L2-resident code.
//!
//! The solver finds the highest quantized frequency at or below the
//! request whose steady-state core-rail current fits the SKU's EDC limit.
//! Current falls with frequency (both V and f drop), so a downward scan
//! terminates; the 25 MHz quantization reproduces the fine-grained steps
//! the paper observes.

use crate::model::NodePowerModel;
use fs2_sim::{Kernel, NodeSteadyState, SystemSim};

/// Result of the throttle solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ThrottleResult {
    /// Requested frequency (the selected P-state), MHz.
    pub requested_mhz: f64,
    /// Applied (possibly throttled) frequency, MHz.
    pub applied_mhz: f64,
    /// Steady state at the applied frequency.
    pub node: NodeSteadyState,
    /// Power at the applied frequency.
    pub power: crate::model::PowerBreakdown,
    /// Whether throttling occurred.
    pub throttled: bool,
}

/// Finds the applied frequency for `kernel` requested at `freq_mhz`.
///
/// `trivial_fraction` is forwarded to the power model (trivial FMA
/// operands lower current and can therefore *reduce* throttling — the
/// paper's v1.7.4 bug also changed the applied frequency headroom).
pub fn solve_throttle(
    sim: &SystemSim,
    model: &NodePowerModel,
    kernel: &Kernel,
    freq_mhz: f64,
    active_cores: Option<u32>,
    trivial_fraction: f64,
) -> ThrottleResult {
    let sku = model.sku();
    let edc = sku.edc_amps_per_socket;
    let ppt = sku.ppt_w_per_socket;
    let step = f64::from(sku.pstates.throttle_step_mhz.max(1));
    let floor = f64::from(sku.pstates.min_throttle_mhz);

    let mut f = freq_mhz;
    loop {
        let node = sim.evaluate(kernel, f, active_cores);
        let power = model.workload_power(&node, kernel, trivial_fraction);
        let within_limits = power.core_rail_amps_per_socket <= edc && power.socket_power_w <= ppt;
        if within_limits || f <= floor {
            return ThrottleResult {
                requested_mhz: freq_mhz,
                applied_mhz: f,
                throttled: f < freq_mhz,
                node,
                power,
            };
        }
        // Quantize strictly below the current frequency.
        let next = sku.pstates.quantize_down(f - step);
        if next >= f {
            // Quantization floor reached.
            return ThrottleResult {
                requested_mhz: freq_mhz,
                applied_mhz: f,
                throttled: f < freq_mhz,
                node,
                power,
            };
        }
        f = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NodePowerModel;
    use fs2_arch::{MemLevel, Sku};
    use fs2_isa::prelude::*;
    use fs2_sim::kernel::TaggedInst;

    /// FMA mix with a dense access pattern: an L1 load+store pair every
    /// group and an L2 load every 2nd — the cache-saturating, compute-
    /// bound shape that exceeds the EDC current limit at nominal
    /// frequency (RAM-bound mixes drop current instead and are governed
    /// by the PPT limit).
    fn mix_kernel(groups: u32, with_caches: bool) -> Kernel {
        let mut body = Vec::new();
        for g in 0..groups {
            body.push(TaggedInst::reg(Inst::Vfmadd231pd {
                dst: Ymm::new((g % 12) as u8),
                src1: Ymm::new(12),
                src2: RmYmm::Reg(Ymm::new(14)),
            }));
            if with_caches {
                body.push(TaggedInst::mem(
                    Inst::VmovapdLoad {
                        dst: Ymm::new(13),
                        src: Mem::base(Gp::Rax),
                    },
                    MemLevel::L1,
                ));
                body.push(TaggedInst::mem(
                    Inst::VmovapdStore {
                        dst: Mem::base(Gp::Rcx),
                        src: Ymm::new(((g + 3) % 12) as u8),
                    },
                    MemLevel::L1,
                ));
            } else {
                body.push(TaggedInst::reg(Inst::XorGp {
                    dst: Gp::Rax,
                    src: Gp::Rbx,
                }));
            }
            body.push(TaggedInst::reg(Inst::Vfmadd231pd {
                dst: Ymm::new(((g + 6) % 12) as u8),
                src1: Ymm::new(13),
                src2: RmYmm::Reg(Ymm::new(15)),
            }));
            if with_caches && g % 2 == 0 {
                body.push(TaggedInst::mem(
                    Inst::VmovapdLoad {
                        dst: Ymm::new(11),
                        src: Mem::base(Gp::Rsi),
                    },
                    MemLevel::L2,
                ));
            } else {
                body.push(TaggedInst::reg(Inst::ShlImm {
                    dst: Gp::Rdx,
                    imm: 4,
                }));
            }
        }
        body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
        body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));
        Kernel::new(
            if with_caches { "cache-mix" } else { "reg-mix" },
            body,
            groups,
        )
    }

    fn setup() -> (SystemSim, NodePowerModel) {
        let sku = Sku::amd_epyc_7502();
        (SystemSim::new(sku.clone()), NodePowerModel::new(sku))
    }

    #[test]
    fn no_throttle_at_1500() {
        // Fig. 12c bottom row: 1492 MHz ≈ no throttling at the lowest
        // P-state even for cache-heavy workloads.
        let (sim, model) = setup();
        let k = mix_kernel(64, true);
        let r = solve_throttle(&sim, &model, &k, 1500.0, None, 0.0);
        assert!(!r.throttled, "throttled to {} MHz", r.applied_mhz);
        assert_eq!(r.applied_mhz, 1500.0);
    }

    #[test]
    fn cache_heavy_workload_throttles_at_nominal() {
        // Fig. 12c top rows: applied frequency 2140–2304 MHz at 2500.
        let (sim, model) = setup();
        let k = mix_kernel(64, true);
        let r = solve_throttle(&sim, &model, &k, 2500.0, None, 0.0);
        assert!(r.throttled, "expected throttling at nominal");
        assert!(
            (1800.0..2500.0).contains(&r.applied_mhz),
            "applied = {} MHz",
            r.applied_mhz
        );
        // Quantized to the 25 MHz step.
        assert_eq!(r.applied_mhz % 25.0, 0.0);
    }

    #[test]
    fn throttled_frequency_is_stable_solution() {
        // Re-evaluating at the applied frequency must satisfy both limits.
        let (sim, model) = setup();
        let k = mix_kernel(64, true);
        let r = solve_throttle(&sim, &model, &k, 2500.0, None, 0.0);
        assert!(r.power.core_rail_amps_per_socket <= model.sku().edc_amps_per_socket + 1e-9);
        assert!(r.power.socket_power_w <= model.sku().ppt_w_per_socket + 1e-9);
    }

    #[test]
    fn trivial_operands_reduce_throttling() {
        let (sim, model) = setup();
        let k = mix_kernel(64, true);
        let healthy = solve_throttle(&sim, &model, &k, 2500.0, None, 0.0);
        let gated = solve_throttle(&sim, &model, &k, 2500.0, None, 1.0);
        assert!(gated.applied_mhz >= healthy.applied_mhz);
    }

    #[test]
    fn fewer_active_cores_throttle_less() {
        let (sim, model) = setup();
        let k = mix_kernel(64, true);
        let full = solve_throttle(&sim, &model, &k, 2500.0, None, 0.0);
        let quarter = solve_throttle(&sim, &model, &k, 2500.0, Some(16), 0.0);
        assert!(quarter.applied_mhz >= full.applied_mhz);
    }

    #[test]
    fn throttle_floor_terminates() {
        // Even with an absurdly low EDC the solver terminates at the floor.
        let mut sku = Sku::amd_epyc_7502();
        sku.edc_amps_per_socket = 0.001;
        let sim = SystemSim::new(sku.clone());
        let model = NodePowerModel::new(sku);
        let k = mix_kernel(64, true);
        let r = solve_throttle(&sim, &model, &k, 2500.0, None, 0.0);
        assert!(r.throttled);
        assert!(r.applied_mhz >= 400.0 - 1e-9);
    }
}
