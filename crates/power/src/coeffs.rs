//! Energy coefficient tables.
//!
//! All dynamic energies are specified at the reference voltage
//! [`PowerCoeffs::vref`] and scale with `(V/Vref)²` (CMOS dynamic power
//! `P = C·V²·f`). Static terms scale with `V²` as a leakage
//! approximation. DRAM energy does not scale with core voltage.
//!
//! ## Calibration landmarks (from the paper)
//!
//! Zen 2 node (2× EPYC 7502):
//! * REG-only FMA mix @ 2500 MHz ⇒ ≈ 314 W (§III-D, v2.0)
//! * v1.7.4 init bug (trivial FMA operands) ⇒ ≈ −8.5 W (§III-D)
//! * REG-only @ 1500 MHz ⇒ ≈ 235 W (Fig. 9 "No access")
//! * optimized mix up to RAM @ 1500 MHz ⇒ ≈ 437 W, +86 % (Fig. 9)
//! * optimized workloads @ 2200/2500 MHz ⇒ 490–515 W with EDC throttling
//!   to ≈ 2140–2300 MHz (Fig. 12)
//!
//! Haswell node (2× E5-2680 v3):
//! * idle with C-states ≈ 70 W; full FIRESTARTER ≈ 360 W (Fig. 2)
//! * each K80 GPU adds 29 W idle / 156 W stressed (handled in `fs2-gpu`).

use fs2_arch::Microarch;

/// Per-microarchitecture power coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCoeffs {
    /// Reference voltage for all dynamic coefficients, volts.
    pub vref: f64,
    /// Board-level constant: fans, VR losses, disks, NICs (watts).
    pub platform_static_w: f64,
    /// Per-socket uncore/IO-die power when idle (watts).
    pub uncore_idle_w: f64,
    /// Per-socket uncore/IO-die power under load (watts).
    pub uncore_active_w: f64,
    /// Per-socket DRAM background power (refresh, PLLs), watts.
    pub dram_static_w: f64,
    /// Per-core power in deep C-state (watts).
    pub core_idle_w: f64,
    /// Per-core static/leakage power at Vref (watts), scales with V².
    pub core_static_w: f64,
    /// Clock-tree + always-on pipeline energy per core cycle (nJ).
    pub e_cycle_nj: f64,
    /// Energy per 256-bit FMA (nJ).
    pub e_fma256_nj: f64,
    /// Energy per 256-bit multiply (nJ).
    pub e_mul256_nj: f64,
    /// Energy per 256-bit add (nJ).
    pub e_add256_nj: f64,
    /// Energy per 256-bit vector logic op (nJ).
    pub e_veclogic_nj: f64,
    /// Energy per scalar sqrt (nJ).
    pub e_sqrt_nj: f64,
    /// Energy per scalar FP multiply/add (nJ) — one lane's worth.
    pub e_scalar64_nj: f64,
    /// Load/store-unit energy per load µop (AGU, TLB, LSQ — the marginal
    /// per-access cost Molka et al. \[11\] measure), nJ.
    pub e_loadop_nj: f64,
    /// LSU energy per store µop, nJ.
    pub e_storeop_nj: f64,
    /// Energy per light ALU op (nJ).
    pub e_alu_nj: f64,
    /// Energy per branch (nJ).
    pub e_branch_nj: f64,
    /// Energy per NOP (nJ).
    pub e_nop_nj: f64,
    /// Front-end energy per µop when served from the loop buffer (nJ).
    pub e_uop_loopbuf_nj: f64,
    /// Front-end energy per µop when served from the µop cache (nJ).
    pub e_uop_opcache_nj: f64,
    /// Front-end energy per µop through fetch+decode (nJ) — the reason
    /// Fig. 8 shows a power step when the loop exceeds the µop cache.
    pub e_uop_decoder_nj: f64,
    /// Instruction-fetch energy per code byte streamed from L2 when the
    /// loop exceeds L1I (the Fig. 8 "large" regime).
    pub e_codefetch_byte_nj: f64,
    /// Data-movement energy per byte served by L1 (nJ/B).
    pub e_l1_byte_nj: f64,
    /// …by L2.
    pub e_l2_byte_nj: f64,
    /// …by L3 (includes CCX interconnect).
    pub e_l3_byte_nj: f64,
    /// …by DRAM (includes IO-die/IMC, bus and DIMM energy; not
    /// voltage-scaled).
    pub e_ram_byte_nj: f64,
    /// Fraction of FMA energy saved when an operand is trivial
    /// (±∞/0/NaN) and the unit clock-gates (Hickmann patent, §III-D).
    pub fma_gate_factor: f64,
}

impl PowerCoeffs {
    /// Coefficients for a microarchitecture.
    pub fn for_uarch(uarch: Microarch) -> PowerCoeffs {
        match uarch {
            Microarch::Zen2 => PowerCoeffs::zen2(),
            Microarch::Haswell => PowerCoeffs::haswell(),
            Microarch::Generic => PowerCoeffs::haswell(),
        }
    }

    /// AMD Zen 2 (7 nm chiplets + 14 nm IO die).
    pub fn zen2() -> PowerCoeffs {
        PowerCoeffs {
            vref: 1.0,
            platform_static_w: 55.0,
            uncore_idle_w: 28.0,
            uncore_active_w: 32.0,
            dram_static_w: 10.0,
            core_idle_w: 0.30,
            core_static_w: 0.55,
            e_cycle_nj: 0.16,
            e_fma256_nj: 0.24,
            e_mul256_nj: 0.18,
            e_add256_nj: 0.14,
            e_veclogic_nj: 0.06,
            e_sqrt_nj: 0.40,
            e_scalar64_nj: 0.045,
            e_loadop_nj: 0.10,
            e_storeop_nj: 0.13,
            e_alu_nj: 0.030,
            e_branch_nj: 0.020,
            e_nop_nj: 0.004,
            e_uop_loopbuf_nj: 0.004,
            e_uop_opcache_nj: 0.008,
            e_uop_decoder_nj: 0.024,
            e_codefetch_byte_nj: 0.004,
            e_l1_byte_nj: 0.004,
            e_l2_byte_nj: 0.030,
            e_l3_byte_nj: 0.070,
            e_ram_byte_nj: 0.60,
            fma_gate_factor: 0.105,
        }
    }

    /// Intel Haswell-EP (22 nm monolithic, ring uncore).
    pub fn haswell() -> PowerCoeffs {
        PowerCoeffs {
            vref: 1.0,
            platform_static_w: 34.0,
            uncore_idle_w: 14.0,
            uncore_active_w: 24.0,
            dram_static_w: 8.0,
            core_idle_w: 0.20,
            core_static_w: 1.10,
            e_cycle_nj: 0.55,
            e_fma256_nj: 1.05,
            e_mul256_nj: 0.80,
            e_add256_nj: 0.60,
            e_veclogic_nj: 0.22,
            e_sqrt_nj: 1.20,
            e_scalar64_nj: 0.18,
            e_loadop_nj: 0.30,
            e_storeop_nj: 0.38,
            e_alu_nj: 0.10,
            e_branch_nj: 0.07,
            e_nop_nj: 0.01,
            e_uop_loopbuf_nj: 0.010,
            e_uop_opcache_nj: 0.022,
            e_uop_decoder_nj: 0.065,
            e_codefetch_byte_nj: 0.012,
            e_l1_byte_nj: 0.020,
            e_l2_byte_nj: 0.110,
            e_l3_byte_nj: 0.260,
            e_ram_byte_nj: 1.10,
            fma_gate_factor: 0.105,
        }
    }

    /// Voltage scaling factor for dynamic/static energies.
    pub fn vscale(&self, voltage: f64) -> f64 {
        let r = voltage / self.vref;
        r * r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_by_uarch() {
        assert_eq!(PowerCoeffs::for_uarch(Microarch::Zen2), PowerCoeffs::zen2());
        assert_eq!(
            PowerCoeffs::for_uarch(Microarch::Haswell),
            PowerCoeffs::haswell()
        );
        // Generic falls back to the conservative Haswell set.
        assert_eq!(
            PowerCoeffs::for_uarch(Microarch::Generic),
            PowerCoeffs::haswell()
        );
    }

    #[test]
    fn vscale_is_quadratic() {
        let c = PowerCoeffs::zen2();
        assert!((c.vscale(1.0) - 1.0).abs() < 1e-12);
        assert!((c.vscale(1.1) - 1.21).abs() < 1e-12);
        assert!((c.vscale(0.85) - 0.7225).abs() < 1e-12);
    }

    #[test]
    fn energy_ordering_invariants() {
        for c in [PowerCoeffs::zen2(), PowerCoeffs::haswell()] {
            // FMA is the most expensive arithmetic op.
            assert!(c.e_fma256_nj > c.e_mul256_nj);
            assert!(c.e_mul256_nj > c.e_add256_nj);
            assert!(c.e_add256_nj > c.e_veclogic_nj);
            assert!(c.e_veclogic_nj > c.e_alu_nj);
            // Decoder path costs more than the µop cache, which costs
            // more than the loop buffer (the Fig. 8 power ladder).
            assert!(c.e_uop_decoder_nj > c.e_uop_opcache_nj);
            assert!(c.e_uop_opcache_nj > c.e_uop_loopbuf_nj);
            // Each memory level is costlier per byte than the previous
            // (the Fig. 2/9 power ladder).
            assert!(c.e_l2_byte_nj > c.e_l1_byte_nj);
            assert!(c.e_l3_byte_nj > c.e_l2_byte_nj);
            assert!(c.e_ram_byte_nj > c.e_l3_byte_nj);
            // Gating saves a modest fraction (≈ 8.5 W on a 314 W node).
            assert!(c.fma_gate_factor > 0.0 && c.fma_gate_factor < 0.3);
        }
    }
}
