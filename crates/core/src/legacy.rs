//! FIRESTARTER 1.x behaviour (§III-A, §III-B, Fig. 4/6).
//!
//! Previous versions held "a fixed set of available workloads, each
//! optimized for a specific Stock Keeping Unit (SKU)", compiled into the
//! binary from templates. This module reproduces:
//!
//! * the static per-SKU workload table and its selection logic,
//! * the v1.7.4 initialization bug (registers accumulate to ±∞, §III-D),
//! * the evolutionary tuning *prototype* of Höhlig's thesis, which had to
//!   recompile between candidates — producing the low-power gaps and
//!   minutes-long measurements shown in Fig. 6.

use crate::groups::{parse_groups, AccessGroup};
use crate::mix::{InstructionMix, MixRegistry};
use crate::payload::{build_payload, default_unroll, Payload, PayloadConfig};
use crate::runner::{RunConfig, Runner};
use fs2_arch::{Microarch, Sku};
use fs2_sim::InitScheme;

/// A fixed workload entry as baked into a 1.x binary.
#[derive(Debug, Clone)]
pub struct LegacyWorkload {
    /// SKU family the template was tuned for.
    pub uarch: Microarch,
    pub mix: InstructionMix,
    /// The template's fixed `M` (tuned for the reference SKU only).
    pub groups: Vec<AccessGroup>,
}

impl LegacyWorkload {
    /// The 1.x workload FIRESTARTER would select for `sku`.
    pub fn for_sku(sku: &Sku) -> LegacyWorkload {
        let (groups, mix) = match sku.uarch {
            // Tuned for the reference 2-socket Haswell-EP node of [3].
            Microarch::Haswell => ("REG:6,L1_LS:2,L2_LS:1,L3_L:1,RAM_L:1", InstructionMix::FMA),
            // Zen 2 entry as shipped in FIRESTARTER 1.7.x (reuses the
            // Haswell mix per §IV-B).
            Microarch::Zen2 => ("REG:8,L1_LS:2,L2_LS:1,L3_L:1,RAM_L:1", InstructionMix::FMA),
            Microarch::Generic => ("REG:4,L1_LS:1,RAM_L:1", InstructionMix::AVX),
        };
        LegacyWorkload {
            uarch: sku.uarch,
            mix,
            groups: parse_groups(groups).expect("static table entries are valid"),
        }
    }

    /// Builds the payload exactly as the static binary would.
    pub fn build(&self, sku: &Sku) -> Payload {
        let unroll = default_unroll(sku, self.mix, &self.groups);
        build_payload(
            sku,
            &PayloadConfig {
                mix: self.mix,
                groups: self.groups.clone(),
                unroll,
            },
        )
    }
}

/// Which FIRESTARTER version's initialization to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// 1.7.4 — the ±∞ accumulation bug.
    V1_7_4,
    /// 2.0 — fixed initialization.
    V2_0,
}

impl Version {
    pub fn init_scheme(self) -> InitScheme {
        match self {
            Version::V1_7_4 => InitScheme::V174Buggy,
            Version::V2_0 => InitScheme::V2Safe,
        }
    }

    pub const fn name(self) -> &'static str {
        match self {
            Version::V1_7_4 => "1.7.4",
            Version::V2_0 => "2.0",
        }
    }
}

/// Parameters of the v1.x tuning prototype's candidate cycle (Fig. 6).
#[derive(Debug, Clone)]
pub struct V1TuningConfig {
    /// Template regeneration + gcc + link time per candidate (the
    /// low-power gap; a near-idle single-core phase).
    pub compile_s: f64,
    /// Power level during compilation (one busy core, rest idle).
    pub compile_w_over_idle: f64,
    /// Measurement duration per candidate — "a few minutes rather than
    /// seconds to mitigate thermal effects".
    pub measure_s: f64,
    /// Warm-up inside each measurement that must be discarded.
    pub warmup_s: f64,
    pub freq_mhz: f64,
}

impl Default for V1TuningConfig {
    fn default() -> V1TuningConfig {
        V1TuningConfig {
            compile_s: 25.0,
            compile_w_over_idle: 12.0,
            measure_s: 180.0,
            warmup_s: 60.0,
            freq_mhz: 0.0,
        }
    }
}

/// Runs one v1-prototype candidate cycle: recompile gap, then a long
/// measurement. Returns the measured mean power.
pub fn v1_tuning_candidate(
    runner: &mut Runner,
    groups: &[AccessGroup],
    cfg: &V1TuningConfig,
) -> f64 {
    let sku = runner.sku().clone();
    let mix = MixRegistry::default_for(sku.uarch);
    let unroll = default_unroll(&sku, mix, groups);
    let payload = build_payload(
        &sku,
        &PayloadConfig {
            mix,
            groups: groups.to_vec(),
            unroll,
        },
    );

    // (1) re-create source, (2) compile, (3) link — near-idle power.
    let idle_w = runner.power_model().idle_power().total_w();
    runner.hold_power(cfg.compile_s, 20.0, idle_w + cfg.compile_w_over_idle);

    // Long measurement with discarded warm-up.
    let run_cfg = RunConfig {
        freq_mhz: cfg.freq_mhz,
        duration_s: cfg.measure_s,
        start_delta_s: cfg.warmup_s,
        stop_delta_s: 2.0,
        functional_iters: 300,
        ..RunConfig::default()
    };
    runner.run(&payload, &run_cfg).power.mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::Target;

    #[test]
    fn static_table_covers_all_uarches() {
        for sku in [
            Sku::amd_epyc_7502(),
            Sku::intel_xeon_e5_2680_v3(),
            Sku::generic(),
        ] {
            let w = LegacyWorkload::for_sku(&sku);
            assert_eq!(w.uarch, sku.uarch);
            assert!(!w.groups.is_empty());
            // Every legacy workload exercises memory.
            assert!(w.groups.iter().any(|g| matches!(g.target, Target::Mem(_))));
            let payload = w.build(&sku);
            assert!(payload.kernel.insts() > 100);
        }
    }

    #[test]
    fn version_init_schemes() {
        assert_eq!(Version::V1_7_4.init_scheme(), InitScheme::V174Buggy);
        assert_eq!(Version::V2_0.init_scheme(), InitScheme::V2Safe);
        assert_eq!(Version::V1_7_4.name(), "1.7.4");
    }

    #[test]
    fn v1_candidate_cycle_leaves_gap_in_trace() {
        // The Fig. 6 signature: between candidates the power collapses
        // toward idle for the recompile, then ramps through a warm-up.
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        let groups = parse_groups("REG:4,L1_LS:1").unwrap();
        let cfg = V1TuningConfig {
            compile_s: 10.0,
            measure_s: 60.0,
            warmup_s: 20.0,
            freq_mhz: 1500.0,
            ..V1TuningConfig::default()
        };
        let p1 = v1_tuning_candidate(&mut runner, &groups, &cfg);
        let p2 = v1_tuning_candidate(&mut runner, &groups, &cfg);
        assert!(p1 > 150.0 && p2 > 150.0);

        let idle_w = runner.power_model().idle_power().total_w();
        // Find the gap: minimum power in the second candidate's compile
        // window (t = 70..80 s).
        let (gap_min, _) = runner.trace().min_max_between(70.5, 79.5).unwrap();
        assert!(
            gap_min < idle_w + 60.0,
            "no recompile gap visible: {gap_min:.1} W"
        );
        // And the measurement phase sits far above it.
        let (_, measure_max) = runner.trace().min_max_between(90.0, 130.0).unwrap();
        assert!(
            measure_max > gap_min + 40.0,
            "gap {gap_min:.1} W vs measurement {measure_max:.1} W"
        );
    }

    #[test]
    fn v1_cycle_takes_minutes_v2_takes_seconds() {
        // Quantifies the speed-up argument of §III-B.
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        let groups = parse_groups("REG:4,L1_LS:1").unwrap();
        let cfg = V1TuningConfig {
            freq_mhz: 1500.0,
            ..V1TuningConfig::default()
        };
        let t0 = runner.clock().now_secs();
        let _ = v1_tuning_candidate(&mut runner, &groups, &cfg);
        let v1_elapsed = runner.clock().now_secs() - t0;
        assert!(v1_elapsed >= 200.0, "v1 cycle only {v1_elapsed} s");
        // v2 candidate: 10 s, no gap — over an order of magnitude faster.
        assert!(v1_elapsed / 10.0 > 10.0);
    }
}
