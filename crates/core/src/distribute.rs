//! Proportional interleaving of access groups.
//!
//! §III: "Based on the fraction of aᵢ in the total number of all defined
//! accesses (Σ aᵢ), the unrolled sets of instructions perform the
//! accesses based on the occurrences. … the single entries will be
//! distributed as good as possible so that the L1 accesses will have a
//! distance of at least three sets of instructions" (for the
//! `REG:4,L1_L:2,L2_L:1` example). "The consecutive accesses are then
//! unrolled so that the total number of instruction sets equals u."

use crate::groups::AccessGroup;

/// Interleaves group indices over a window of `Σ count` slots using a
/// largest-remainder (Bresenham-style) schedule: at slot `i`, the group
/// with the largest deficit `count·(i+1)/N − used` is chosen. Equal-count
/// groups end up evenly spaced.
pub fn distribute(groups: &[AccessGroup]) -> Vec<usize> {
    assert!(!groups.is_empty(), "cannot distribute an empty group list");
    let total: u64 = groups.iter().map(|g| u64::from(g.count)).sum();
    assert!(total > 0, "total access count must be positive");
    let mut used = vec![0u64; groups.len()];
    let mut out = Vec::with_capacity(total as usize);
    for slot in 0..total {
        let mut best = 0usize;
        let mut best_deficit = f64::NEG_INFINITY;
        for (k, g) in groups.iter().enumerate() {
            if used[k] >= u64::from(g.count) {
                continue;
            }
            let quota = u64::from(g.count) as f64 * (slot + 1) as f64 / total as f64;
            let deficit = quota - used[k] as f64;
            // Ties break toward the earlier (typically REG) item, keeping
            // the schedule deterministic.
            if deficit > best_deficit + 1e-12 {
                best_deficit = deficit;
                best = k;
            }
        }
        used[best] += 1;
        out.push(best);
    }
    debug_assert_eq!(out.len() as u64, total);
    out
}

/// Tiles the distributed window so the loop holds exactly `u` instruction
/// sets.
pub fn unroll_sequence(window: &[usize], u: u32) -> Vec<usize> {
    assert!(!window.is_empty());
    (0..u as usize).map(|i| window[i % window.len()]).collect()
}

/// Minimum distance between consecutive occurrences of `group` in a
/// cyclic sequence (used by tests and the payload sanity checks).
pub fn min_cyclic_distance(seq: &[usize], group: usize) -> Option<usize> {
    let positions: Vec<usize> = seq
        .iter()
        .enumerate()
        .filter_map(|(i, &g)| (g == group).then_some(i))
        .collect();
    if positions.len() < 2 {
        return None;
    }
    let mut min = usize::MAX;
    for w in positions.windows(2) {
        min = min.min(w[1] - w[0]);
    }
    // Wrap-around distance.
    min = min.min(seq.len() - positions.last().unwrap() + positions[0]);
    Some(min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::{AccessGroup, Pattern};
    use fs2_arch::MemLevel;

    fn paper_example() -> Vec<AccessGroup> {
        vec![
            AccessGroup::reg(4),
            AccessGroup::mem(MemLevel::L1, Pattern::Load, 2),
            AccessGroup::mem(MemLevel::L2, Pattern::Load, 1),
        ]
    }

    #[test]
    fn counts_are_respected() {
        let groups = paper_example();
        let seq = distribute(&groups);
        assert_eq!(seq.len(), 7);
        assert_eq!(seq.iter().filter(|&&g| g == 0).count(), 4);
        assert_eq!(seq.iter().filter(|&&g| g == 1).count(), 2);
        assert_eq!(seq.iter().filter(|&&g| g == 2).count(), 1);
    }

    #[test]
    fn paper_spacing_property() {
        // "the L1 accesses will have a distance of at least three sets".
        let groups = paper_example();
        let seq = distribute(&groups);
        let d = min_cyclic_distance(&seq, 1).unwrap();
        assert!(d >= 3, "L1 spacing {d} in {seq:?}");
    }

    #[test]
    fn even_split_alternates() {
        let groups = vec![
            AccessGroup::reg(3),
            AccessGroup::mem(MemLevel::L1, Pattern::Load, 3),
        ];
        let seq = distribute(&groups);
        // Perfectly alternating (any rotation).
        for w in seq.windows(2) {
            assert_ne!(w[0], w[1], "clustered schedule: {seq:?}");
        }
    }

    #[test]
    fn single_group_fills_window() {
        let groups = vec![AccessGroup::reg(5)];
        assert_eq!(distribute(&groups), vec![0; 5]);
    }

    #[test]
    fn skewed_ratio_keeps_rare_item_spread() {
        let groups = vec![
            AccessGroup::reg(12),
            AccessGroup::mem(MemLevel::Ram, Pattern::Load, 3),
        ];
        let seq = distribute(&groups);
        let d = min_cyclic_distance(&seq, 1).unwrap();
        // 15 slots / 3 occurrences ⇒ ideal spacing 5.
        assert!(d >= 4, "RAM spacing {d} in {seq:?}");
    }

    #[test]
    fn unrolling_tiles_the_window() {
        let groups = paper_example();
        let window = distribute(&groups);
        let seq = unroll_sequence(&window, 21);
        assert_eq!(seq.len(), 21);
        // Tiling preserves the ratio exactly for multiples of the window.
        assert_eq!(seq.iter().filter(|&&g| g == 0).count(), 12);
        assert_eq!(seq.iter().filter(|&&g| g == 1).count(), 6);
        assert_eq!(seq.iter().filter(|&&g| g == 2).count(), 3);
        // Truncated tiling still approximates the ratio.
        let seq = unroll_sequence(&window, 10);
        assert_eq!(seq.len(), 10);
        let regs = seq.iter().filter(|&&g| g == 0).count();
        assert!((5..=7).contains(&regs), "REG count {regs} of 10");
    }

    #[test]
    fn distribution_is_deterministic() {
        let groups = paper_example();
        assert_eq!(distribute(&groups), distribute(&groups));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_groups_panic() {
        let _ = distribute(&[]);
    }
}
