//! The self-tuning loop (§III-C).
//!
//! "We included an internal optimization and metric measurement loop that
//! tunes the memory accesses within M to achieve high power consumption."
//! Objectives are power and instruction throughput; the optimizer is
//! NSGA-II; candidates run back-to-back with no recompile gaps (Fig. 7,
//! contrast Fig. 6); `I` is explicitly excluded from tuning.

use crate::engine::Engine;
use crate::groups::{all_valid_items, AccessGroup};
use crate::mix::InstructionMix;
use crate::payload::{default_unroll, PayloadConfig};
use crate::runner::{RunConfig, Runner};
use fs2_tuning::{EvaluatedIndividual, Nsga2, Nsga2Config, Nsga2Result, Problem};

/// Tuning parameters (paper §IV-E: `--optimize=NSGA2 --individuals=40
/// --generations=20 --nsga2-m=0.35 -t 10 --preheat=240`).
#[derive(Debug, Clone)]
pub struct TuneConfig {
    pub nsga2: Nsga2Config,
    /// Per-candidate test duration (`-t`), seconds.
    pub test_duration_s: f64,
    /// Default-workload preheat before optimization (`--preheat`).
    pub preheat_s: f64,
    /// Core frequency for the whole tuning run, MHz.
    pub freq_mhz: f64,
    /// Instruction set `I` (not tuned).
    pub mix: InstructionMix,
    /// Unroll factor `u`; `None` = [`default_unroll`].
    pub unroll: Option<u32>,
    /// Upper bound for each access-group count gene.
    pub max_count: u32,
    /// Fast-simulator pre-screen: score each candidate with a traceless
    /// cached evaluation first, and skip the full measured run for
    /// candidates whose steady-state power falls clearly below the
    /// preheat workload's (the `REG:1` default is always in the search
    /// space, so such candidates can never be the selected optimum).
    /// Pruned candidates keep their traceless objectives, so NSGA-II
    /// still ranks them; pruning decisions are counted in
    /// [`crate::engine::CacheStats`] / [`crate::RegistryStats`].
    pub prescreen: bool,
}

/// Pre-screen margin: candidates are pruned only when their traceless
/// power is below this fraction of the best traceless estimate seen so
/// far. The always-on FMA stream keeps candidate powers within a few
/// percent of each other, so the margin is tight; it still only trims
/// the clear-loser tail, and the running best itself is never pruned
/// (the measured and traceless orderings track each other).
const PRESCREEN_MARGIN: f64 = 0.97;

impl TuneConfig {
    /// Simulated wall time one tuning session occupies: preheat plus
    /// the exact NSGA-II evaluation budget at the per-candidate test
    /// duration, seconds. This is the duration-based size hint sweep
    /// drivers pass to `Engine::sweep_hinted` when fanning several
    /// tuning runs out next to cheaper work.
    pub fn expected_duration_s(&self) -> f64 {
        self.preheat_s + self.nsga2.evaluation_budget() as f64 * self.test_duration_s
    }
}

impl Default for TuneConfig {
    fn default() -> TuneConfig {
        TuneConfig {
            nsga2: Nsga2Config::default(),
            test_duration_s: 10.0,
            preheat_s: 240.0,
            freq_mhz: 0.0, // nominal
            mix: InstructionMix::FMA,
            unroll: None,
            max_count: 8,
            prescreen: false,
        }
    }
}

/// Outcome of a tuning session.
#[derive(Debug, Clone)]
pub struct TuneResult {
    pub nsga2: Nsga2Result,
    /// The selected optimum ω_opt: highest-power individual of the front.
    pub best: EvaluatedIndividual,
    /// Its decoded access groups.
    pub best_groups: Vec<AccessGroup>,
    /// Unroll factor used for every candidate.
    pub unroll: u32,
}

/// Decodes a genome into access groups (zero counts drop out).
pub fn genes_to_groups(genes: &[u32]) -> Vec<AccessGroup> {
    let items = all_valid_items();
    debug_assert_eq!(genes.len(), items.len());
    genes
        .iter()
        .zip(items)
        .filter(|(&count, _)| count > 0)
        .map(|(&count, (target, pattern))| AccessGroup {
            target,
            pattern,
            count,
        })
        .collect()
}

struct FirestarterProblem<'a> {
    engine: &'a Engine,
    runner: &'a mut Runner,
    cfg: &'a TuneConfig,
    unroll: u32,
    run_cfg: RunConfig,
    /// Best traceless candidate power seen so far, seeded from the
    /// preheat workload; `Some` iff the pre-screen is enabled. The prune
    /// bar is [`PRESCREEN_MARGIN`] times this value.
    prescreen_best_w: Option<f64>,
}

impl Problem for FirestarterProblem<'_> {
    fn n_genes(&self) -> usize {
        all_valid_items().len()
    }

    fn n_objectives(&self) -> usize {
        2
    }

    fn bounds(&self) -> Vec<(u32, u32)> {
        vec![(0, self.cfg.max_count); self.n_genes()]
    }

    fn repair(&self, genes: &mut [u32]) {
        // An individual with no accesses at all is not a workload;
        // FIRESTARTER keeps at least the register FMA stream alive.
        if genes.iter().all(|&g| g == 0) {
            genes[0] = 1;
        }
    }

    fn evaluate(&mut self, genes: &[u32]) -> Vec<f64> {
        let groups = genes_to_groups(genes);
        // Candidates go through every engine cache tier: a genome
        // revisited across generations (or by a later tuning run sharing
        // the engine) costs a payload lookup instead of a rebuild, and
        // its functional pass is served from the ExecStats cache.
        // Candidates still run back-to-back: the runner clock simply
        // advances — no recompile, no idle gap (the Fig. 7 property).
        let config = PayloadConfig {
            mix: self.cfg.mix,
            groups,
            unroll: self.unroll,
        };
        // Fast-simulator pre-screen: the traceless evaluation reuses
        // every shared cache tier (payload, decoded kernel, ExecStats),
        // so scoring a candidate costs a steady-state solve instead of
        // a full measured run. Candidates clearly below the preheat
        // workload's power keep their traceless objectives — they are
        // dominated by the always-present REG:1 baseline on the power
        // axis, so the selected optimum is never a pruned individual.
        if let Some(best_w) = self.prescreen_best_w {
            let est = self
                .engine
                .eval_init(&config, self.run_cfg.freq_mhz, self.run_cfg.init);
            let est_w = est.power.total_w();
            let pruned = est_w < best_w * PRESCREEN_MARGIN;
            self.engine.caches().note_prescreen(pruned);
            self.prescreen_best_w = Some(best_w.max(est_w));
            if pruned {
                return vec![est_w, est.node.core.ipc];
            }
        }
        let result = self.engine.run_on(self.runner, &config, &self.run_cfg);
        vec![result.power.mean, result.ipc]
    }
}

/// Drives a complete self-tuning session on a runner.
pub struct AutoTuner;

impl AutoTuner {
    /// Runs preheat + NSGA-II and returns the selected optimum. The
    /// runner keeps the full power trace of the session.
    ///
    /// Convenience wrapper over [`AutoTuner::run_with_engine`] with a
    /// private engine; prefer [`crate::engine::Session::tune`] (or an
    /// explicit shared engine) so candidate payloads are cached across
    /// tuning runs.
    pub fn run(runner: &mut Runner, cfg: &TuneConfig) -> TuneResult {
        let engine = Engine::new(runner.sku().clone());
        AutoTuner::run_with_engine(&engine, runner, cfg)
    }

    /// Runs preheat + NSGA-II on `runner`, drawing every candidate
    /// payload from `engine`'s cache.
    pub fn run_with_engine(engine: &Engine, runner: &mut Runner, cfg: &TuneConfig) -> TuneResult {
        let freq = if cfg.freq_mhz > 0.0 {
            cfg.freq_mhz
        } else {
            f64::from(runner.sku().nominal_mhz())
        };
        let reg_only = vec![AccessGroup::reg(1)];
        let unroll = cfg
            .unroll
            .unwrap_or_else(|| default_unroll(runner.sku(), cfg.mix, &reg_only));

        // Preheat with the default workload to cancel thermal effects.
        let preheat_config = PayloadConfig {
            mix: cfg.mix,
            groups: reg_only,
            unroll,
        };
        if cfg.preheat_s > 0.0 {
            let preheat_cfg = RunConfig {
                freq_mhz: freq,
                duration_s: cfg.preheat_s,
                start_delta_s: 0.0,
                stop_delta_s: 0.0,
                functional_iters: 200,
                ..RunConfig::default()
            };
            let _ = engine.run_on(runner, &preheat_config, &preheat_cfg);
        }

        // The pre-screen bar is seeded off the preheat workload: its
        // payload and functional pass are already cached from the
        // preheat run, so the seed is one cached traceless solve. From
        // there the bar tracks the best candidate estimate seen so far.
        let prescreen_best_w = cfg
            .prescreen
            .then(|| engine.eval(&preheat_config, freq).power.total_w());

        // Short per-candidate windows: with -t 10 the paper-equivalent
        // deltas shrink to keep a usable window.
        let run_cfg = RunConfig {
            freq_mhz: freq,
            duration_s: cfg.test_duration_s,
            start_delta_s: (cfg.test_duration_s * 0.2).min(5.0),
            stop_delta_s: (cfg.test_duration_s * 0.1).min(2.0),
            // Triviality shows within a handful of iterations; keep the
            // per-candidate functional pass cheap for the tuning loop.
            functional_iters: 64,
            ..RunConfig::default()
        };

        let mut problem = FirestarterProblem {
            engine,
            runner,
            cfg,
            unroll,
            run_cfg,
            prescreen_best_w,
        };
        let nsga2 = Nsga2::new(cfg.nsga2.clone()).run(&mut problem);
        let best = nsga2
            .best_by(0)
            .expect("tuning always yields a non-empty front")
            .clone();
        let best_groups = genes_to_groups(&best.genes);
        TuneResult {
            nsga2,
            best,
            best_groups,
            unroll,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::Target;
    use fs2_arch::Sku;

    /// A small but real tuning run (reduced population for test speed).
    fn small_cfg(freq: f64, seed: u64) -> TuneConfig {
        TuneConfig {
            nsga2: Nsga2Config {
                individuals: 8,
                generations: 4,
                mutation_prob: 0.35,
                crossover_prob: 0.9,
                seed,
            },
            test_duration_s: 10.0,
            preheat_s: 60.0,
            freq_mhz: freq,
            unroll: Some(128),
            max_count: 6,
            ..TuneConfig::default()
        }
    }

    #[test]
    fn genes_decode_skips_zeros() {
        let n = all_valid_items().len();
        let mut genes = vec![0u32; n];
        genes[0] = 4; // REG
        genes[1] = 2; // L1_L
        let groups = genes_to_groups(&genes);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].target, Target::Reg);
        assert_eq!(groups[0].count, 4);
    }

    #[test]
    fn tuning_finds_memory_beats_reg_only() {
        // The entire point of the tool: tuned M must beat plain REG:1.
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        let cfg = small_cfg(1500.0, 11);
        let result = AutoTuner::run(&mut runner, &cfg);

        // Baseline power of REG:1 at the same frequency on a preheated
        // node (take it from the tuning history: repair guarantees gene0).
        let best_power = result.best.objectives[0];
        assert!(
            !result.best_groups.is_empty(),
            "optimum must have at least one group"
        );
        // Memory accesses must appear in the optimum.
        let has_mem = result
            .best_groups
            .iter()
            .any(|g| matches!(g.target, Target::Mem(_)));
        assert!(
            has_mem,
            "optimum is register-only: {:?}",
            result.best_groups
        );
        // And it must clearly beat the REG-only level (~215 W @1500 MHz).
        assert!(best_power > 280.0, "tuned power only {best_power:.1} W");
    }

    #[test]
    fn history_length_matches_configuration() {
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        let cfg = small_cfg(1500.0, 12);
        let result = AutoTuner::run(&mut runner, &cfg);
        assert_eq!(result.nsga2.history.len(), 8 * 5);
    }

    #[test]
    fn trace_has_no_idle_gaps_between_candidates() {
        // Fig. 7: "there is no visible drop in power consumption between
        // candidates" — the minimum trace power after preheat must stay
        // far above idle.
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        let idle_w = runner.power_model().idle_power().total_w();
        let cfg = small_cfg(1500.0, 13);
        let _ = AutoTuner::run(&mut runner, &cfg);
        let t_end = runner.clock().now_secs();
        let (min_w, _) = runner
            .trace()
            .min_max_between(cfg.preheat_s, t_end)
            .unwrap();
        assert!(
            min_w > idle_w * 1.3,
            "idle-level dip in tuning trace: {min_w:.1} W vs idle {idle_w:.1} W"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let r1 = {
            let mut runner = Runner::new(Sku::amd_epyc_7502());
            AutoTuner::run(&mut runner, &small_cfg(1500.0, 42))
        };
        let r2 = {
            let mut runner = Runner::new(Sku::amd_epyc_7502());
            AutoTuner::run(&mut runner, &small_cfg(1500.0, 42))
        };
        assert_eq!(r1.best.genes, r2.best.genes);
        assert_eq!(r1.best.objectives, r2.best.objectives);
    }

    #[test]
    fn prescreen_prunes_and_still_finds_a_memory_optimum() {
        let engine = Engine::new(Sku::amd_epyc_7502());
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        let cfg = TuneConfig {
            prescreen: true,
            ..small_cfg(1500.0, 11)
        };
        let result = AutoTuner::run_with_engine(&engine, &mut runner, &cfg);
        let stats = engine.cache_stats();
        assert_eq!(
            stats.prescreen_evals as usize,
            result.nsga2.history.len() - result.nsga2.cache_hits as usize,
            "every live evaluation must be scored by the pre-screen"
        );
        assert!(
            stats.prescreen_pruned > 0,
            "a 6-count random search space always draws clear losers"
        );
        assert!(stats.prescreen_pruned < stats.prescreen_evals);
        // The optimum is unaffected in kind: memory accesses beating the
        // REG-only level (pruned candidates sit below the bar, so the
        // power winner is always fully measured).
        let has_mem = result
            .best_groups
            .iter()
            .any(|g| matches!(g.target, Target::Mem(_)));
        assert!(has_mem, "optimum register-only: {:?}", result.best_groups);
        assert!(result.best.objectives[0] > 280.0);
    }

    #[test]
    fn prescreen_off_counts_nothing() {
        let engine = Engine::new(Sku::amd_epyc_7502());
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        let _ = AutoTuner::run_with_engine(&engine, &mut runner, &small_cfg(1500.0, 11));
        let stats = engine.cache_stats();
        assert_eq!(stats.prescreen_evals, 0);
        assert_eq!(stats.prescreen_pruned, 0);
    }

    #[test]
    fn preheat_duration_reflected_in_clock() {
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        let cfg = small_cfg(1500.0, 14);
        let _ = AutoTuner::run(&mut runner, &cfg);
        // 60 s preheat + 40 evaluations × 10 s = 460 s.
        let expected = cfg.preheat_s + 40.0 * cfg.test_duration_s;
        assert_eq!(cfg.expected_duration_s(), expected);
        let now = runner.clock().now_secs();
        // Cache hits skip runs, so the clock may be short of the bound.
        assert!(now <= expected + 1e-6, "clock {now} > {expected}");
        assert!(now >= cfg.preheat_s + 5.0 * cfg.test_duration_s);
    }
}
