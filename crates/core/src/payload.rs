//! Payload generation — the AsmJit-equivalent backend (Fig. 5).
//!
//! "The binary carries only the instruction mix definitions but not the
//! concrete representation of the workloads. Users can define the unroll
//! factor u and the memory accesses M at runtime. FIRESTARTER uses these
//! runtime parameters to create the binary representation of the
//! workload."
//!
//! [`build_payload`] turns `(I, u, M)` into both a [`fs2_sim::Kernel`]
//! (for the simulator) and real x86-64 machine code (prologue + unrolled
//! loop + epilogue) via the `fs2-isa` assembler. The machine code is
//! validated by decoding it back (see tests) — the execution itself runs
//! on the simulator per DESIGN.md §2.

use crate::distribute::{distribute, unroll_sequence};
use crate::groups::{format_groups, AccessGroup, Target};
use crate::mix::{level_base_addr, level_pointer, InstructionMix};
use fs2_arch::{MemLevel, Sku};
use fs2_isa::prelude::*;
use fs2_sim::kernel::TaggedInst;
use fs2_sim::Kernel;

/// A workload specification `(I, u, M)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PayloadConfig {
    pub mix: InstructionMix,
    /// The memory accesses `M`.
    pub groups: Vec<AccessGroup>,
    /// The unroll factor `u` (`--set-line-count`): instruction sets per
    /// loop iteration.
    pub unroll: u32,
}

/// A generated workload.
#[derive(Debug, Clone)]
pub struct Payload {
    /// Simulator-executable kernel (one loop iteration).
    pub kernel: Kernel,
    /// Complete generated function: prologue, unrolled loop, `ret`.
    pub machine_code: Vec<u8>,
    /// Group index (into `config.groups`) of each unrolled set.
    pub sequence: Vec<usize>,
    pub config: PayloadConfig,
}

impl Payload {
    /// Levels referenced by the access groups.
    pub fn used_levels(&self) -> Vec<MemLevel> {
        let mut levels: Vec<MemLevel> = self
            .config
            .groups
            .iter()
            .filter_map(|g| match g.target {
                Target::Mem(l) => Some(l),
                Target::Reg => None,
            })
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels
    }
}

/// Computes the default unroll factor for a mix on a SKU: large enough
/// that the loop cannot live in the µop cache (keeping fetch+decode
/// busy — §III's power rationale), small enough to stay L1I-resident
/// ("we choose the unroll factor so that the loop fits into the L1-I
/// cache", §IV-C).
pub fn default_unroll(sku: &Sku, mix: InstructionMix, groups: &[AccessGroup]) -> u32 {
    let window = distribute(groups);
    // Measure one window's code size and µop count.
    let mut bytes = 0usize;
    let mut uops = 0u64;
    for (i, &gi) in window.iter().enumerate() {
        let access = match (groups[gi].target, groups[gi].pattern) {
            (Target::Mem(level), Some(p)) => Some((level, p)),
            _ => None,
        };
        let set = mix.emit_group(i as u32, access);
        for t in &set {
            bytes += fs2_isa::encoder::encoded_len(&t.inst);
            uops += u64::from(fs2_isa::meta::meta(&t.inst).uops);
        }
    }
    let bytes_per_set = bytes as f64 / window.len() as f64;
    let uops_per_set = uops as f64 / window.len() as f64;

    // Target ~¾ of L1I so the loop plus tail fits comfortably.
    let by_l1i = (sku.l1i_bytes as f64 * 0.75 / bytes_per_set) as u32;
    // Must exceed the µop cache to force decoder activity.
    let min_by_opcache = if sku.frontend.opcache_capacity_uops > 0 {
        (f64::from(sku.frontend.opcache_capacity_uops) * 1.25 / uops_per_set) as u32
    } else {
        0
    };
    let u = by_l1i.max(min_by_opcache).max(window.len() as u32);
    // Round to a whole number of windows for exact access ratios.
    let w = window.len() as u32;
    u.div_ceil(w) * w
}

/// Builds the payload for `(mix, unroll, groups)` on `sku`.
pub fn build_payload(sku: &Sku, config: &PayloadConfig) -> Payload {
    assert!(!config.groups.is_empty(), "M must not be empty");
    assert!(config.unroll > 0, "unroll factor must be positive");
    let _ = sku; // reserved: per-SKU emission choices (e.g. AVX-512)

    let window = distribute(&config.groups);
    let sequence = unroll_sequence(&window, config.unroll);

    let mut body: Vec<TaggedInst> = Vec::with_capacity(sequence.len() * 4 + 8);
    for (i, &gi) in sequence.iter().enumerate() {
        let g = &config.groups[gi];
        let access = match (g.target, g.pattern) {
            (Target::Mem(level), Some(p)) => Some((level, p)),
            _ => None,
        };
        body.extend(config.mix.emit_group(i as u32, access));
    }

    // Per-iteration pointer resets keep each access stream inside its
    // level-sized buffer (FIRESTARTER sizes walks to the buffer and
    // rewinds between iterations).
    let mut used_levels: Vec<MemLevel> = config
        .groups
        .iter()
        .filter_map(|g| match g.target {
            Target::Mem(l) => Some(l),
            Target::Reg => None,
        })
        .collect();
    used_levels.sort_unstable();
    used_levels.dedup();
    for &level in &used_levels {
        body.push(TaggedInst::reg(Inst::MovImm64 {
            dst: level_pointer(level),
            imm: level_base_addr(level),
        }));
    }

    // Loop tail.
    body.push(TaggedInst::reg(Inst::Dec(Gp::Rdi)));
    body.push(TaggedInst::reg(Inst::Jnz { rel: 0 }));

    let name = format!(
        "{}:{}@u{}",
        config.mix.name,
        format_groups(&config.groups),
        config.unroll
    );
    let kernel = Kernel::new(name, body.clone(), config.unroll);

    // Machine code: prologue initializes pointers; the loop branches back
    // with a resolved label; `ret` closes the function.
    let mut asm = Assembler::new();
    for &level in &used_levels {
        asm.push(Inst::MovImm64 {
            dst: level_pointer(level),
            imm: level_base_addr(level),
        });
    }
    let top = asm.label();
    asm.bind(top);
    for t in body.iter().take(body.len() - 1) {
        asm.push(t.inst);
    }
    asm.jnz(top);
    asm.push(Inst::Ret);
    let machine_code = asm.finish().expect("payload assembly cannot fail");

    Payload {
        kernel,
        machine_code,
        sequence,
        config: config.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::parse_groups;
    use fs2_arch::pipeline::FetchSource;
    use fs2_sim::core::{steady_state, ActiveSet};

    fn rome() -> Sku {
        Sku::amd_epyc_7502()
    }

    fn cfg(groups: &str, unroll: u32) -> PayloadConfig {
        PayloadConfig {
            mix: InstructionMix::FMA,
            groups: parse_groups(groups).unwrap(),
            unroll,
        }
    }

    #[test]
    fn kernel_matches_unroll_and_ratios() {
        let sku = rome();
        let p = build_payload(&sku, &cfg("REG:4,L1_L:2,L2_L:1", 70));
        assert_eq!(p.sequence.len(), 70);
        // 70 sets tile ten 7-slot windows exactly: 40/20/10 split.
        assert_eq!(p.sequence.iter().filter(|&&g| g == 0).count(), 40);
        assert_eq!(p.sequence.iter().filter(|&&g| g == 1).count(), 20);
        assert_eq!(p.sequence.iter().filter(|&&g| g == 2).count(), 10);
        // Traffic: 20 L1 loads × 32 B, 10 L2 loads × 32 B.
        assert_eq!(p.kernel.traffic.load_bytes[MemLevel::L1.idx()], 640);
        assert_eq!(p.kernel.traffic.load_bytes[MemLevel::L2.idx()], 320);
        assert_eq!(p.used_levels(), vec![MemLevel::L1, MemLevel::L2]);
    }

    #[test]
    fn machine_code_decodes_back_fully() {
        let sku = rome();
        let p = build_payload(&sku, &cfg("REG:2,L1_LS:1,RAM_P:1", 32));
        let decoded = fs2_isa::decode_all(&p.machine_code)
            .expect("generated payload must be fully decodable");
        // Prologue (2 pointer inits) + body + jnz + ret.
        assert!(decoded.len() > 32 * 4);
        assert_eq!(*decoded.last().unwrap(), Inst::Ret);
        // The back-edge lands exactly on the loop top: jnz displacement is
        // negative and within the code.
        let jnz = decoded
            .iter()
            .rev()
            .find_map(|i| match i {
                Inst::Jnz { rel } => Some(*rel),
                _ => None,
            })
            .expect("loop back-edge present");
        assert!(jnz < 0);
        assert!((-jnz as usize) < p.machine_code.len());
    }

    #[test]
    fn reg_only_payload_has_no_memory() {
        let sku = rome();
        let p = build_payload(&sku, &cfg("REG:1", 64));
        assert_eq!(p.kernel.traffic.total_accesses(), 0);
        assert!(p.used_levels().is_empty());
        // 64 groups × 4 insts + dec + jnz.
        assert_eq!(p.kernel.insts(), 64 * 4 + 2);
    }

    #[test]
    fn default_unroll_exceeds_opcache_but_fits_l1i() {
        let sku = rome();
        let groups = parse_groups("REG:1").unwrap();
        let u = default_unroll(&sku, InstructionMix::FMA, &groups);
        let p = build_payload(&sku, &cfg("REG:1", u));
        // Must spill the 4096-µop op cache...
        assert!(p.kernel.meta.uops > u64::from(sku.frontend.opcache_capacity_uops));
        // ...but stay inside L1I.
        assert!(p.kernel.code_bytes <= sku.l1i_bytes);
        // And the steady state confirms decoder delivery.
        let ss = steady_state(&sku, &p.kernel, 2500.0, ActiveSet::full(&sku));
        assert_eq!(ss.fetch_source, FetchSource::L1i);
    }

    #[test]
    fn small_unroll_lands_in_opcache_large_in_l2() {
        let sku = rome();
        let small = build_payload(&sku, &cfg("REG:1", 64));
        let ss = steady_state(&sku, &small.kernel, 2500.0, ActiveSet::full(&sku));
        assert_eq!(ss.fetch_source, FetchSource::OpCache);

        let huge = build_payload(&sku, &cfg("REG:1", 3000));
        let ss = steady_state(&sku, &huge.kernel, 2500.0, ActiveSet::full(&sku));
        assert_eq!(ss.fetch_source, FetchSource::L2);
    }

    #[test]
    fn default_unroll_is_window_multiple() {
        let sku = rome();
        let groups = parse_groups("REG:4,L1_L:2,L2_L:1").unwrap();
        let u = default_unroll(&sku, InstructionMix::FMA, &groups);
        assert_eq!(u % 7, 0, "u = {u} not a multiple of the 7-slot window");
    }

    #[test]
    fn store_groups_generate_store_traffic() {
        let sku = rome();
        let p = build_payload(&sku, &cfg("REG:1,L1_2LS:1", 16));
        let t = &p.kernel.traffic;
        assert!(t.load_bytes[MemLevel::L1.idx()] > 0);
        assert!(t.store_bytes[MemLevel::L1.idx()] > 0);
        // 2 loads : 1 store per 2LS group.
        assert_eq!(
            t.load_bytes[MemLevel::L1.idx()],
            2 * t.store_bytes[MemLevel::L1.idx()]
        );
    }

    #[test]
    fn sqrt_payload_builds() {
        let sku = rome();
        let p = build_payload(
            &sku,
            &PayloadConfig {
                mix: InstructionMix::SQRT,
                groups: parse_groups("REG:1").unwrap(),
                unroll: 16,
            },
        );
        assert!(p.kernel.meta.sqrt > 0);
        assert!(fs2_isa::decode_all(&p.machine_code).is_ok());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_groups_rejected() {
        let sku = rome();
        let _ = build_payload(
            &sku,
            &PayloadConfig {
                mix: InstructionMix::FMA,
                groups: vec![],
                unroll: 1,
            },
        );
    }

    #[test]
    fn functional_execution_of_generated_payload_is_stable() {
        // End-to-end: generated payload runs on the functional executor
        // without producing trivial values (v2 init).
        let sku = rome();
        let p = build_payload(&sku, &cfg("REG:2,L1_LS:1", 21));
        let mut ex = fs2_sim::Executor::new(fs2_sim::InitScheme::V2Safe, 99);
        ex.run(&p.kernel, 2000);
        assert_eq!(ex.stats().trivial_lane_ops, 0);
        assert!(!ex.any_trivial_register());
    }
}
