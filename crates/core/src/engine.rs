//! The engine/session layer: a reusable payload-to-power pipeline.
//!
//! Every consumer of generated workloads — the CLI's `Measure`/`Optimize`
//! actions, the fig/table experiments, and the NSGA-II evaluation loop —
//! used to rebuild payloads from scratch and drive its own ad-hoc
//! `Runner` glue. An [`Engine`] centralizes that plumbing for one SKU:
//!
//! * a **payload cache** memoizing [`build_payload`] results keyed by
//!   `(mix, groups, unroll)` — sweeps over mixes, unroll factors and
//!   access groups (the dominant usage pattern; Figs. 6–12 are all
//!   sweeps) stop paying for redundant code generation;
//! * **[`Session`]s**, each owning a [`Runner`] on its own simulated
//!   clock, for trace-producing measurement runs;
//! * **traceless evaluation** ([`Engine::eval`]) for parameter sweeps
//!   that only need the EDC-aware steady state;
//! * a **parallel sweep driver** ([`Engine::sweep`]) fanning a work
//!   queue out over scoped OS threads. Item evaluation is deterministic,
//!   so an N-thread sweep returns bitwise-identical results to a serial
//!   pass, in input order.
//!
//! The engine is `Sync`: sessions and sweep workers on different threads
//! share one payload cache.

use crate::groups::GroupParseError;
use crate::mix::{InstructionMix, MixRegistry};
use crate::payload::{build_payload, default_unroll, Payload, PayloadConfig};
use crate::runner::{RunConfig, RunResult, Runner};
use fs2_arch::Sku;
use fs2_power::{solve_throttle, NodePowerModel, ThrottleResult};
use fs2_sim::SystemSim;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Cache key: the full workload specification `(I, u, M)`. The engine is
/// per-SKU, so the SKU is not part of the key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PayloadKey {
    mix: crate::mix::MixKind,
    groups: Vec<crate::groups::AccessGroup>,
    unroll: u32,
}

impl PayloadKey {
    fn of(config: &PayloadConfig) -> PayloadKey {
        PayloadKey {
            mix: config.mix.kind,
            groups: config.groups.clone(),
            unroll: config.unroll,
        }
    }
}

/// Snapshot of the payload-cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to build a fresh payload.
    pub misses: u64,
    /// Distinct payloads currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Total payload requests served.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A per-SKU workload engine: payload cache + session factory + sweep
/// driver. Create one per simulated system and share it freely (`&Engine`
/// is all any consumer needs).
pub struct Engine {
    sku: Sku,
    sim: SystemSim,
    power_model: NodePowerModel,
    cache: Mutex<HashMap<PayloadKey, Arc<Payload>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evals: AtomicU64,
    seed: u64,
}

impl Engine {
    /// Engine with the default runner seed.
    pub fn new(sku: Sku) -> Engine {
        Engine::with_seed(sku, 0xF12E_57A2)
    }

    /// Engine whose sessions default to `seed`.
    pub fn with_seed(sku: Sku, seed: u64) -> Engine {
        Engine {
            sim: SystemSim::new(sku.clone()),
            power_model: NodePowerModel::new(sku.clone()),
            sku,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evals: AtomicU64::new(0),
            seed,
        }
    }

    pub fn sku(&self) -> &Sku {
        &self.sku
    }

    /// The seed sessions are created with by default.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shared node simulator (hardware-event sampling, steady-state
    /// queries that need more than [`Engine::eval`]).
    pub fn sim(&self) -> &SystemSim {
        &self.sim
    }

    /// The calibrated node power model (idle floor, workload power
    /// composition) the engine evaluates against.
    pub fn power_model(&self) -> &NodePowerModel {
        &self.power_model
    }

    /// Node power with every core in its deepest idle state, watts —
    /// the floor duty-cycled fleet workloads decay to.
    pub fn idle_power_w(&self) -> f64 {
        self.power_model.idle_power().total_w()
    }

    /// Returns the payload for `config`, building it at most once.
    /// Cached payloads are deterministic: a hit hands back the same
    /// `machine_code` bytes a fresh [`build_payload`] would produce.
    pub fn payload(&self, config: &PayloadConfig) -> Arc<Payload> {
        let key = PayloadKey::of(config);
        if let Some(p) = self.cache.lock().expect("payload cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(p);
        }
        // Build outside the lock: payload generation is the expensive
        // part, and concurrent sweep workers must not serialize on it.
        // Threads racing on the same key all build, but only the one
        // whose insert lands in the vacant entry counts the miss; losers
        // drop their (identical) copy, take the winner's Arc, and count
        // as late hits — so `misses` equals the number of distinct
        // payloads ever built into the cache.
        let built = Arc::new(build_payload(&self.sku, config));
        let mut cache = self.cache.lock().expect("payload cache poisoned");
        match cache.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(e.get())
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Arc::clone(v.insert(built))
            }
        }
    }

    /// Payload config for a group string with the architecture-default
    /// mix and unroll factor (the common experiment shape).
    pub fn config_for_spec(&self, spec: &str) -> Result<PayloadConfig, GroupParseError> {
        let mix = MixRegistry::default_for(self.sku.uarch);
        let groups = crate::groups::parse_groups(spec)?;
        let unroll = default_unroll(&self.sku, mix, &groups);
        Ok(PayloadConfig {
            mix,
            groups,
            unroll,
        })
    }

    /// Cached payload for a group string (default mix and unroll).
    pub fn payload_for_spec(&self, spec: &str) -> Result<Arc<Payload>, GroupParseError> {
        Ok(self.payload(&self.config_for_spec(spec)?))
    }

    /// Cached payload for explicit groups with a chosen mix; `unroll =
    /// None` selects [`default_unroll`].
    pub fn payload_for_groups(
        &self,
        mix: InstructionMix,
        groups: Vec<crate::groups::AccessGroup>,
        unroll: Option<u32>,
    ) -> Arc<Payload> {
        let unroll = unroll.unwrap_or_else(|| default_unroll(&self.sku, mix, &groups));
        self.payload(&PayloadConfig {
            mix,
            groups,
            unroll,
        })
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.cache.lock().expect("payload cache poisoned").len(),
        }
    }

    /// Direct (traceless) evaluation: EDC-aware steady state + power.
    /// Orders of magnitude faster than a full session run; the parameter
    /// sweeps live on this.
    pub fn eval(&self, payload: &Payload, freq_mhz: f64) -> ThrottleResult {
        self.evals.fetch_add(1, Ordering::Relaxed);
        solve_throttle(
            &self.sim,
            &self.power_model,
            &payload.kernel,
            freq_mhz,
            None,
            0.0,
        )
    }

    /// Number of [`Engine::eval`] operating-point solves so far (the
    /// registry aggregates this across engines for fleet reports).
    pub fn eval_count(&self) -> u64 {
        self.evals.load(Ordering::Relaxed)
    }

    /// A fresh measurement session on its own simulated clock, seeded
    /// with the engine default.
    pub fn session(&self) -> Session<'_> {
        self.session_with_seed(self.seed)
    }

    /// A fresh measurement session with an explicit seed.
    pub fn session_with_seed(&self, seed: u64) -> Session<'_> {
        Session {
            engine: self,
            runner: Runner::with_seed(self.sku.clone(), seed),
        }
    }

    /// One-shot measurement: fresh session, cached payload, single run.
    pub fn measure(&self, config: &PayloadConfig, run_cfg: &RunConfig) -> RunResult {
        self.session().run(config, run_cfg)
    }

    /// Evaluates `worker` over `items` on up to `threads` OS threads
    /// (scoped; no detached state). Items are pulled from a shared work
    /// queue, results land in input order. `threads == 0` uses the host
    /// parallelism. Every worker sees the same `&Engine` — payload-cache
    /// hits are shared across the sweep.
    ///
    /// Item evaluations must be independent (each typically opens its own
    /// [`Session`]); under that contract the result vector is
    /// bitwise-identical to a serial `items.iter().map(...)` pass.
    pub fn sweep<T, R, F>(&self, items: &[T], threads: usize, worker: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&Engine, usize, &T) -> R + Sync,
    {
        let order: Vec<usize> = (0..items.len()).collect();
        self.sweep_ordered(items, threads, order, worker)
    }

    /// [`Engine::sweep`] with a per-item size hint (arbitrary cost
    /// units, larger = longer). The work queue serves items in
    /// descending hint order — longest-processing-time-first packing —
    /// so a long NSGA-II tuning next to 10 s measurement runs no longer
    /// strands the other workers behind it at the tail of the queue.
    /// Results still land in input order, and because hints only
    /// reorder *execution*, the result vector stays bitwise-identical
    /// to [`Engine::sweep`] and to a serial pass.
    pub fn sweep_hinted<T, R, F, H>(
        &self,
        items: &[T],
        threads: usize,
        size_hint: H,
        worker: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&Engine, usize, &T) -> R + Sync,
        H: Fn(usize, &T) -> u64,
    {
        let mut order: Vec<usize> = (0..items.len()).collect();
        // Stable sort: ties keep input order, so equal-cost sweeps
        // behave exactly like the unhinted queue. Cached key: the
        // caller's hint closure runs exactly once per item.
        order.sort_by_cached_key(|&i| std::cmp::Reverse(size_hint(i, &items[i])));
        self.sweep_ordered(items, threads, order, worker)
    }

    /// Shared sweep core: a claim-by-index queue over `order`, results
    /// written to input-order slots.
    fn sweep_ordered<T, R, F>(
        &self,
        items: &[T],
        threads: usize,
        order: Vec<usize>,
        worker: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&Engine, usize, &T) -> R + Sync,
    {
        debug_assert_eq!(order.len(), items.len());
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        }
        .min(items.len().max(1));

        if threads <= 1 || items.len() <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| worker(self, i, item))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= order.len() {
                        break;
                    }
                    let i = order[k];
                    let r = worker(self, i, &items[i]);
                    *slots[i].lock().expect("sweep slot poisoned") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("sweep slot poisoned")
                    .expect("every queue index was claimed exactly once")
            })
            .collect()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("sku", &self.sku.name)
            .field("seed", &self.seed)
            .field("cache", &self.cache_stats())
            .finish()
    }
}

/// One measurement session: a [`Runner`] (simulated clock, session-long
/// power trace, thermal state) bound to its engine's payload cache.
/// Everything the CLI, the experiments and the tuning loop previously
/// wired by hand goes through here.
pub struct Session<'e> {
    engine: &'e Engine,
    runner: Runner,
}

impl<'e> Session<'e> {
    /// The engine this session draws payloads from.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    pub fn sku(&self) -> &Sku {
        self.runner.sku()
    }

    /// Runs the cached payload for `config` under `run_cfg`, advancing
    /// the session clock.
    pub fn run(&mut self, config: &PayloadConfig, run_cfg: &RunConfig) -> RunResult {
        let payload = self.engine.payload(config);
        self.runner.run(&payload, run_cfg)
    }

    /// Runs the cached payload for a group string (default mix/unroll).
    pub fn run_spec(
        &mut self,
        spec: &str,
        run_cfg: &RunConfig,
    ) -> Result<RunResult, GroupParseError> {
        let config = self.engine.config_for_spec(spec)?;
        Ok(self.run(&config, run_cfg))
    }

    /// Runs an already-built payload (e.g. one handed out by
    /// [`Engine::payload`] before a sweep).
    pub fn run_payload(&mut self, payload: &Payload, run_cfg: &RunConfig) -> RunResult {
        self.runner.run(payload, run_cfg)
    }

    /// Runs a raw kernel (baselines, hand-built ablation kernels).
    pub fn run_kernel(&mut self, kernel: &fs2_sim::Kernel, run_cfg: &RunConfig) -> RunResult {
        self.runner.run_kernel(kernel, run_cfg)
    }

    /// Runs the §III-C self-tuning loop inside this session; candidate
    /// payloads come from the engine cache.
    pub fn tune(&mut self, cfg: &crate::autotune::TuneConfig) -> crate::autotune::TuneResult {
        crate::autotune::AutoTuner::run_with_engine(self.engine, &mut self.runner, cfg)
    }

    /// Records idle time on the session trace.
    pub fn idle(&mut self, duration_s: f64, sample_rate_hz: f64) {
        self.runner.idle(duration_s, sample_rate_hz);
    }

    /// Records constant-power time (preheat etc.) on the session trace.
    pub fn hold_power(&mut self, duration_s: f64, sample_rate_hz: f64, base_w: f64) {
        self.runner.hold_power(duration_s, sample_rate_hz, base_w);
    }

    /// Arms a single-bit register fault for the next error-detection run.
    pub fn inject_fault_next_run(&mut self, lane: usize, reg: usize, bit: u32) {
        self.runner.inject_fault_next_run(lane, reg, bit);
    }

    /// The session-long power trace.
    pub fn trace(&self) -> &fs2_metrics::TimeSeries {
        self.runner.trace()
    }

    /// The session clock.
    pub fn clock(&self) -> &fs2_sim::SimClock {
        self.runner.clock()
    }

    pub fn power_model(&self) -> &NodePowerModel {
        self.runner.power_model()
    }

    /// Escape hatch for consumers that still take `&mut Runner` (legacy
    /// baselines, the v1.x tuning prototype).
    pub fn runner_mut(&mut self) -> &mut Runner {
        &mut self.runner
    }

    pub fn runner(&self) -> &Runner {
        &self.runner
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("sku", &self.runner.sku().name)
            .field("t_s", &self.runner.clock().now_secs())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::parse_groups;

    fn engine() -> Engine {
        Engine::new(Sku::amd_epyc_7502())
    }

    fn quick_cfg(freq: f64) -> RunConfig {
        RunConfig {
            freq_mhz: freq,
            duration_s: 10.0,
            start_delta_s: 2.0,
            stop_delta_s: 1.0,
            functional_iters: 200,
            ..RunConfig::default()
        }
    }

    #[test]
    fn payload_cache_hits_and_misses_are_counted() {
        let e = engine();
        let cfg = e.config_for_spec("REG:4,L1_L:2,L2_L:1").unwrap();
        assert_eq!(e.cache_stats().requests(), 0);

        let p1 = e.payload(&cfg);
        let s = e.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 1, 1));

        let p2 = e.payload(&cfg);
        let s = e.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(Arc::ptr_eq(&p1, &p2), "hit must return the cached payload");

        // A different unroll is a different workload.
        let mut cfg2 = cfg.clone();
        cfg2.unroll += 7;
        let _ = e.payload(&cfg2);
        let s = e.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 2));
    }

    #[test]
    fn cached_payload_is_identical_to_fresh_build() {
        let e = engine();
        let cfg = e.config_for_spec("REG:2,L1_LS:1,RAM_P:1").unwrap();
        let cached = e.payload(&cfg);
        let cached_again = e.payload(&cfg);
        let fresh = build_payload(e.sku(), &cfg);
        assert_eq!(cached.machine_code, fresh.machine_code);
        assert_eq!(cached_again.machine_code, fresh.machine_code);
        assert_eq!(cached.kernel, fresh.kernel);
        assert_eq!(cached.sequence, fresh.sequence);
    }

    #[test]
    fn session_run_equals_direct_runner_path() {
        let e = engine();
        let cfg = e.config_for_spec("REG:1").unwrap();
        let run_cfg = quick_cfg(1500.0);
        let via_session = e.session().run(&cfg, &run_cfg);

        let payload = build_payload(e.sku(), &cfg);
        let mut runner = Runner::with_seed(e.sku().clone(), e.seed());
        let direct = runner.run(&payload, &run_cfg);
        assert_eq!(via_session.power, direct.power);
        assert_eq!(via_session.applied_freq_mhz, direct.applied_freq_mhz);
        assert_eq!(via_session.ipc, direct.ipc);
    }

    #[test]
    fn sweep_parallel_matches_serial_bitwise() {
        let e = engine();
        let specs = [
            "REG:1",
            "REG:4,L1_L:2",
            "REG:4,L1_2LS:2,L2_LS:1",
            "REG:6,L1_2LS:3,L2_LS:1,L3_LS:1",
            "REG:8,L1_2LS:4,L2_LS:1,L3_LS:1,RAM_LS:1",
            "REG:2,RAM_LS:2",
            "L1_L:1",
            "REG:10,L1_2LS:4,L2_LS:2,L3_LS:1,RAM_L:1",
        ];
        let worker = |e: &Engine, _i: usize, spec: &&str| {
            let cfg = e.config_for_spec(spec).unwrap();
            let r = e.session().run(&cfg, &quick_cfg(1500.0));
            (r.power, r.applied_freq_mhz, r.ipc, r.events)
        };
        let serial = e.sweep(&specs, 1, worker);
        let parallel = e.sweep(&specs, 4, worker);
        assert_eq!(serial, parallel);
        // And the sweep populated the shared cache once per spec.
        assert_eq!(e.cache_stats().entries, specs.len());
    }

    #[test]
    fn sweep_preserves_input_order() {
        let e = engine();
        let items: Vec<usize> = (0..100).collect();
        let out = e.sweep(&items, 8, |_, i, &item| {
            assert_eq!(i, item);
            item * 3
        });
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn eval_matches_runner_scale() {
        let e = engine();
        let p = e.payload_for_spec("REG:1").unwrap();
        assert_eq!(e.eval_count(), 0);
        let r = e.eval(&p, 1500.0);
        assert!((180.0..280.0).contains(&r.power.total_w()));
        let _ = e.eval(&p, 2200.0);
        assert_eq!(e.eval_count(), 2, "eval counter must track solves");
    }

    #[test]
    fn concurrent_payload_requests_converge_to_one_entry() {
        let e = engine();
        let cfg = e.config_for_spec("REG:4,L1_L:2,L2_L:1").unwrap();
        let items = vec![(); 16];
        let payloads = e.sweep(&items, 8, |e, _, _| e.payload(&cfg));
        let s = e.cache_stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.requests(), 16);
        // Whatever raced, everyone must observe identical bytes.
        for p in &payloads {
            assert_eq!(p.machine_code, payloads[0].machine_code);
        }
    }

    #[test]
    fn bad_spec_is_reported() {
        let e = engine();
        assert!(e.payload_for_spec("L9_X:1").is_err());
        assert!(parse_groups("L9_X:1").is_err());
    }

    #[test]
    fn many_threads_one_key_counts_one_miss() {
        // Regression: concurrent misses on the same key used to count one
        // miss *per builder*. With entry-based insertion exactly one
        // thread counts the miss, losers count as hits, and every caller
        // gets the winner's Arc — whatever the interleaving.
        let e = engine();
        let cfg = e.config_for_spec("REG:4,L1_L:2,L2_L:1").unwrap();
        const N: usize = 16;
        let barrier = std::sync::Barrier::new(N);
        let payloads: Vec<Arc<Payload>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..N)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait(); // maximize same-key contention
                        e.payload(&cfg)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let s = e.cache_stats();
        assert_eq!(s.misses, 1, "racing builders must count one miss");
        assert_eq!(s.hits, (N - 1) as u64);
        assert_eq!(s.entries, 1);
        let cached = e.payload(&cfg);
        for p in &payloads {
            assert!(
                Arc::ptr_eq(p, &cached),
                "every caller must observe the single cached Arc"
            );
        }
    }

    #[test]
    fn sweep_handles_empty_items() {
        let e = engine();
        let items: [u32; 0] = [];
        let out = e.sweep(&items, 4, |_, _, &x| x * 2);
        assert!(out.is_empty());
        let out = e.sweep_hinted(&items, 4, |_, _| 1, |_, _, &x| x * 2);
        assert!(out.is_empty());
    }

    #[test]
    fn sweep_with_more_threads_than_items() {
        let e = engine();
        let items = [10u32, 20, 30];
        let out = e.sweep(&items, 64, |_, i, &x| (i, x + 1));
        assert_eq!(out, vec![(0, 11), (1, 21), (2, 31)]);
    }

    #[test]
    fn sweep_zero_threads_on_single_item() {
        // threads == 0 means "host parallelism"; with one item it must
        // degrade to the serial path, not spawn an empty pool.
        let e = engine();
        let items = [7u64];
        let out = e.sweep(&items, 0, |_, i, &x| x + i as u64);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn sweep_hinted_matches_unhinted_bitwise() {
        let e = engine();
        let items: Vec<usize> = (0..40).collect();
        // Long-tailed costs: item 0 is the most expensive, descending.
        let worker = |e: &Engine, i: usize, item: &usize| {
            let cfg = e.config_for_spec("REG:2,L1_LS:1").unwrap();
            let p = e.payload(&cfg);
            let r = e.eval(&p, 1500.0);
            (i, *item, r.power.total_w().to_bits())
        };
        let plain = e.sweep(&items, 4, worker);
        let hinted = e.sweep_hinted(&items, 4, |i, _| (items.len() - i) as u64, worker);
        let serial = e.sweep(&items, 1, worker);
        assert_eq!(plain, hinted);
        assert_eq!(hinted, serial);
    }
}
