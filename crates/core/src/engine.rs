//! The engine/session layer: a reusable payload-to-power pipeline.
//!
//! Every consumer of generated workloads — the CLI's `Measure`/`Optimize`
//! actions, the fig/table experiments, and the NSGA-II evaluation loop —
//! used to rebuild payloads from scratch and drive its own ad-hoc
//! `Runner` glue. An [`Engine`] centralizes that plumbing for one SKU:
//!
//! * a **payload cache** memoizing [`build_payload`] results keyed by
//!   `(mix, groups, unroll)` — sweeps over mixes, unroll factors and
//!   access groups (the dominant usage pattern; Figs. 6–12 are all
//!   sweeps) stop paying for redundant code generation;
//! * **[`Session`]s**, each owning a [`Runner`] on its own simulated
//!   clock, for trace-producing measurement runs;
//! * **traceless evaluation** ([`Engine::eval`]) for parameter sweeps
//!   that only need the EDC-aware steady state;
//! * a **parallel sweep driver** ([`Engine::sweep`]) fanning a work
//!   queue out over scoped OS threads. Item evaluation is deterministic,
//!   so an N-thread sweep returns bitwise-identical results to a serial
//!   pass, in input order.
//!
//! The engine is `Sync`: sessions and sweep workers on different threads
//! share one payload cache.

use crate::groups::GroupParseError;
use crate::mix::{InstructionMix, MixRegistry};
use crate::payload::{build_payload, default_unroll, Payload, PayloadConfig};
use crate::runner::{RunConfig, RunResult, Runner};
use fs2_arch::Sku;
use fs2_power::{solve_throttle, NodePowerModel, ThrottleResult};
use fs2_sim::{run_functional, DecodedKernel, FunctionalOutcome, InitScheme, SystemSim};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key: the full workload specification `(SKU, I, u, M)`. The
/// cache tiers behind an engine can be shared registry-wide across SKU
/// engines ([`EngineCaches`]), so the SKU name is part of the key —
/// sharing never aliases payloads across SKUs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PayloadKey {
    sku: &'static str,
    mix: crate::mix::MixKind,
    groups: Vec<crate::groups::AccessGroup>,
    unroll: u32,
}

impl PayloadKey {
    fn of(sku: &Sku, config: &PayloadConfig) -> PayloadKey {
        PayloadKey {
            sku: sku.name,
            mix: config.mix.kind,
            groups: config.groups.clone(),
            unroll: config.unroll,
        }
    }
}

/// One payload-cache slot: the built payload plus its lazily decoded
/// micro-op table. The decode is memoized per cache entry, so repeat
/// runs of a cached payload (every NSGA-II re-evaluation, every fleet
/// warm-up) replay the same shared [`DecodedKernel`] instead of
/// re-decoding the instruction stream per run.
struct PayloadEntry {
    payload: Arc<Payload>,
    decoded: OnceLock<Arc<DecodedKernel>>,
}

/// ExecStats-cache key: a [`FunctionalOutcome`] is a pure function of
/// `(payload, init scheme, executor seed, iteration count)`, nothing
/// else — which is exactly what makes memoizing it sound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ExecKey {
    payload: PayloadKey,
    init: InitScheme,
    seed: u64,
    iters: u64,
}

/// Snapshot of the engine's cache counters — all three tiers: payload
/// builds, kernel decodes, and functional (ExecStats) passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to build a fresh payload.
    pub misses: u64,
    /// Distinct payloads currently cached.
    pub entries: usize,
    /// Decoded-kernel requests served from a memoized table.
    pub decoded_hits: u64,
    /// Decoded-kernel requests that ran the decoder.
    pub decoded_misses: u64,
    /// Functional passes answered from the ExecStats cache.
    pub exec_hits: u64,
    /// Functional passes executed live (then cached).
    pub exec_misses: u64,
    /// Distinct `(payload, init, seed, iters)` outcomes cached.
    pub exec_entries: usize,
    /// Tuning candidates scored by the traceless pre-screen.
    pub prescreen_evals: u64,
    /// Pre-screened candidates pruned before full measurement.
    pub prescreen_pruned: u64,
}

impl CacheStats {
    /// Total payload requests served.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

/// The shareable cache tier behind one or more [`Engine`]s: payload
/// builds, memoized kernel decodes, and functional (ExecStats)
/// outcomes, plus their hit/miss counters.
///
/// A standalone engine owns a private tier; an
/// [`crate::EngineRegistry`] hands every SKU engine one shared
/// `Arc<EngineCaches>`, so heterogeneous fleet requests warm a single
/// registry-wide cache instead of N per-engine ones. Keys are
/// SKU-tagged (`PayloadKey`), so sharing is safe across SKUs — a hit
/// can only come from the same `(SKU, mix, groups, unroll)` workload.
pub struct EngineCaches {
    payloads: Mutex<HashMap<PayloadKey, Arc<PayloadEntry>>>,
    execs: Mutex<HashMap<ExecKey, Arc<FunctionalOutcome>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    decoded_hits: AtomicU64,
    decoded_misses: AtomicU64,
    exec_hits: AtomicU64,
    exec_misses: AtomicU64,
    prescreen_evals: AtomicU64,
    prescreen_pruned: AtomicU64,
}

impl EngineCaches {
    /// An empty cache tier, ready to be shared across engines.
    pub fn new() -> EngineCaches {
        EngineCaches {
            payloads: Mutex::new(HashMap::new()),
            execs: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            decoded_hits: AtomicU64::new(0),
            decoded_misses: AtomicU64::new(0),
            exec_hits: AtomicU64::new(0),
            exec_misses: AtomicU64::new(0),
            prescreen_evals: AtomicU64::new(0),
            prescreen_pruned: AtomicU64::new(0),
        }
    }

    /// Counter snapshot for the whole tier. When the tier is shared,
    /// these are registry-wide totals (read the tier once — summing
    /// per-engine snapshots would multiply-count shared counters).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.payloads.lock().expect("payload cache poisoned").len(),
            decoded_hits: self.decoded_hits.load(Ordering::Relaxed),
            decoded_misses: self.decoded_misses.load(Ordering::Relaxed),
            exec_hits: self.exec_hits.load(Ordering::Relaxed),
            exec_misses: self.exec_misses.load(Ordering::Relaxed),
            exec_entries: self.execs.lock().expect("exec cache poisoned").len(),
            prescreen_evals: self.prescreen_evals.load(Ordering::Relaxed),
            prescreen_pruned: self.prescreen_pruned.load(Ordering::Relaxed),
        }
    }

    /// Records one tuner pre-screen decision (see
    /// [`crate::autotune::TuneConfig::prescreen`]).
    pub(crate) fn note_prescreen(&self, pruned: bool) {
        self.prescreen_evals.fetch_add(1, Ordering::Relaxed);
        if pruned {
            self.prescreen_pruned.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Default for EngineCaches {
    fn default() -> EngineCaches {
        EngineCaches::new()
    }
}

impl std::fmt::Debug for EngineCaches {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineCaches")
            .field("stats", &self.stats())
            .finish()
    }
}

/// One batched traceless-evaluation request: a workload plus every
/// frequency the caller needs operating points for (see
/// [`Engine::eval_batch`]).
#[derive(Debug, Clone)]
pub struct EvalRequest {
    pub config: PayloadConfig,
    /// Init scheme of the cached functional pass that supplies the
    /// trivial fraction ([`InitScheme::V2Safe`] matches
    /// [`Engine::eval`]).
    pub init: InitScheme,
    pub freqs_mhz: Vec<f64>,
}

/// The result for one [`EvalRequest`]: the payload's cached trivial
/// fraction and one operating point per requested frequency, in
/// request order.
#[derive(Debug, Clone)]
pub struct EvalBatch {
    pub trivial_fraction: f64,
    pub points: Vec<ThrottleResult>,
}

/// A per-SKU workload engine: payload cache + session factory + sweep
/// driver. Create one per simulated system and share it freely (`&Engine`
/// is all any consumer needs).
pub struct Engine {
    sku: Sku,
    sim: SystemSim,
    power_model: NodePowerModel,
    caches: Arc<EngineCaches>,
    evals: AtomicU64,
    seed: u64,
}

impl Engine {
    /// Engine with the default runner seed.
    pub fn new(sku: Sku) -> Engine {
        Engine::with_seed(sku, 0xF12E_57A2)
    }

    /// Engine whose sessions default to `seed`, with a private cache
    /// tier.
    pub fn with_seed(sku: Sku, seed: u64) -> Engine {
        Engine::with_caches(sku, seed, Arc::new(EngineCaches::new()))
    }

    /// Engine backed by an existing (possibly shared) cache tier — the
    /// constructor [`crate::EngineRegistry`] uses so every SKU engine
    /// warms the same registry-wide caches.
    pub fn with_caches(sku: Sku, seed: u64, caches: Arc<EngineCaches>) -> Engine {
        Engine {
            sim: SystemSim::new(sku.clone()),
            power_model: NodePowerModel::new(sku.clone()),
            sku,
            caches,
            evals: AtomicU64::new(0),
            seed,
        }
    }

    /// The engine's cache tier (shared when the engine came from a
    /// registry).
    pub fn caches(&self) -> &Arc<EngineCaches> {
        &self.caches
    }

    pub fn sku(&self) -> &Sku {
        &self.sku
    }

    /// The seed sessions are created with by default.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shared node simulator (hardware-event sampling, steady-state
    /// queries that need more than [`Engine::eval`]).
    pub fn sim(&self) -> &SystemSim {
        &self.sim
    }

    /// The calibrated node power model (idle floor, workload power
    /// composition) the engine evaluates against.
    pub fn power_model(&self) -> &NodePowerModel {
        &self.power_model
    }

    /// Node power with every core in its deepest idle state, watts —
    /// the floor duty-cycled fleet workloads decay to.
    pub fn idle_power_w(&self) -> f64 {
        self.power_model.idle_power().total_w()
    }

    /// The cache entry for `config`, building the payload at most once.
    fn entry(&self, config: &PayloadConfig) -> Arc<PayloadEntry> {
        self.entry_with(&PayloadKey::of(&self.sku, config), config)
    }

    /// [`Engine::entry`] for a caller that already computed the key
    /// (`run_on` builds it once and reuses it for the ExecStats tier —
    /// one groups-vector clone per run instead of two).
    fn entry_with(&self, key: &PayloadKey, config: &PayloadConfig) -> Arc<PayloadEntry> {
        let caches = &self.caches;
        if let Some(e) = caches
            .payloads
            .lock()
            .expect("payload cache poisoned")
            .get(key)
        {
            caches.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(e);
        }
        // Build outside the lock: payload generation is the expensive
        // part, and concurrent sweep workers must not serialize on it.
        // Threads racing on the same key all build, but only the one
        // whose insert lands in the vacant entry counts the miss; losers
        // drop their (identical) copy, take the winner's Arc, and count
        // as late hits — so `misses` equals the number of distinct
        // payloads ever built into the cache.
        let built = Arc::new(PayloadEntry {
            payload: Arc::new(build_payload(&self.sku, config)),
            decoded: OnceLock::new(),
        });
        let mut cache = caches.payloads.lock().expect("payload cache poisoned");
        match cache.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => {
                caches.hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(e.get())
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                caches.misses.fetch_add(1, Ordering::Relaxed);
                Arc::clone(v.insert(built))
            }
        }
    }

    /// Returns the payload for `config`, building it at most once.
    /// Cached payloads are deterministic: a hit hands back the same
    /// `machine_code` bytes a fresh [`build_payload`] would produce.
    pub fn payload(&self, config: &PayloadConfig) -> Arc<Payload> {
        Arc::clone(&self.entry(config).payload)
    }

    /// The cached payload for `config` together with its memoized
    /// micro-op table. The decode runs at most once per cache entry —
    /// every later run of the same payload (any seed, any init scheme)
    /// replays the shared table.
    pub fn payload_decoded(&self, config: &PayloadConfig) -> (Arc<Payload>, Arc<DecodedKernel>) {
        let entry = self.entry(config);
        let decoded = self.decoded_of(&entry);
        (Arc::clone(&entry.payload), decoded)
    }

    /// The entry's memoized micro-op table, decoding on first request.
    fn decoded_of(&self, entry: &PayloadEntry) -> Arc<DecodedKernel> {
        match entry.decoded.get() {
            Some(d) => {
                self.caches.decoded_hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(d)
            }
            // OnceLock runs the init closure exactly once even under a
            // race, so `decoded_misses` counts distinct decodes; a racer
            // that blocked on the winner counts neither hit nor miss.
            None => Arc::clone(entry.decoded.get_or_init(|| {
                self.caches.decoded_misses.fetch_add(1, Ordering::Relaxed);
                Arc::new(DecodedKernel::new(&entry.payload.kernel))
            })),
        }
    }

    /// The functional (§III-D value-level) outcome of running `config`'s
    /// payload for `iters` iterations from `(init, seed)`, served from
    /// the ExecStats cache when this exact tuple ran before. The outcome
    /// — [`fs2_sim::ExecStats`], state hash, register file — is a pure
    /// function of the key, so a hit is bit-identical to a live pass.
    pub fn functional_outcome(
        &self,
        config: &PayloadConfig,
        init: InitScheme,
        seed: u64,
        iters: u64,
    ) -> Arc<FunctionalOutcome> {
        let key = PayloadKey::of(&self.sku, config);
        let entry = self.entry_with(&key, config);
        let decoded = self.decoded_of(&entry);
        self.functional_outcome_keyed(key, &decoded, init, seed, iters)
    }

    /// [`Engine::functional_outcome`] for a caller already holding the
    /// payload key and decoded table (no second payload-cache lookup or
    /// groups clone; a miss replays `decoded` directly).
    fn functional_outcome_keyed(
        &self,
        payload: PayloadKey,
        decoded: &DecodedKernel,
        init: InitScheme,
        seed: u64,
        iters: u64,
    ) -> Arc<FunctionalOutcome> {
        let key = ExecKey {
            payload,
            init,
            seed,
            iters,
        };
        let caches = &self.caches;
        if let Some(o) = caches.execs.lock().expect("exec cache poisoned").get(&key) {
            caches.exec_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(o);
        }
        // Same discipline as the payload cache: run outside the lock,
        // entry-based insert so a same-key race counts one miss.
        let outcome = Arc::new(run_functional(decoded, init, seed, iters));
        let mut cache = caches.execs.lock().expect("exec cache poisoned");
        match cache.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                caches.exec_hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(e.get())
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                caches.exec_misses.fetch_add(1, Ordering::Relaxed);
                Arc::clone(v.insert(outcome))
            }
        }
    }

    /// Runs `config`'s payload on `runner` through every cache tier:
    /// cached payload, memoized decoded kernel, and — for clean runs —
    /// the ExecStats cache, which skips the functional pass entirely on
    /// a hit. Armed fault injections replay the functional pass live
    /// (their second executor is perturbed, so no cached outcome
    /// describes them). Results are bit-identical to
    /// [`Runner::run_kernel`] in every case.
    pub fn run_on(
        &self,
        runner: &mut Runner,
        config: &PayloadConfig,
        cfg: &RunConfig,
    ) -> RunResult {
        let key = PayloadKey::of(&self.sku, config);
        let entry = self.entry_with(&key, config);
        let decoded = self.decoded_of(&entry);
        if runner.has_pending_fault() {
            runner.run_prepared(&entry.payload.kernel, &decoded, cfg)
        } else {
            let outcome = self.functional_outcome_keyed(
                key,
                &decoded,
                cfg.init,
                runner.seed(),
                cfg.functional_iters,
            );
            runner.run_with_functional(&entry.payload.kernel, &outcome, cfg)
        }
    }

    /// Payload config for a group string with the architecture-default
    /// mix and unroll factor (the common experiment shape).
    pub fn config_for_spec(&self, spec: &str) -> Result<PayloadConfig, GroupParseError> {
        let mix = MixRegistry::default_for(self.sku.uarch);
        let groups = crate::groups::parse_groups(spec)?;
        let unroll = default_unroll(&self.sku, mix, &groups);
        Ok(PayloadConfig {
            mix,
            groups,
            unroll,
        })
    }

    /// Cached payload for a group string (default mix and unroll).
    pub fn payload_for_spec(&self, spec: &str) -> Result<Arc<Payload>, GroupParseError> {
        Ok(self.payload(&self.config_for_spec(spec)?))
    }

    /// Cached payload for explicit groups with a chosen mix; `unroll =
    /// None` selects [`default_unroll`].
    pub fn payload_for_groups(
        &self,
        mix: InstructionMix,
        groups: Vec<crate::groups::AccessGroup>,
        unroll: Option<u32>,
    ) -> Arc<Payload> {
        let unroll = unroll.unwrap_or_else(|| default_unroll(&self.sku, mix, &groups));
        self.payload(&PayloadConfig {
            mix,
            groups,
            unroll,
        })
    }

    /// Current cache counters (all tiers). When the engine shares a
    /// registry-wide tier, these are the shared totals, not per-engine
    /// slices.
    pub fn cache_stats(&self) -> CacheStats {
        self.caches.stats()
    }

    /// Functional iteration count backing [`Engine::eval`]'s cached
    /// trivial fraction. Matches the autotuner's fast-feedback pass, so
    /// tuning and traceless evaluation share ExecStats cache entries.
    pub const EVAL_FUNCTIONAL_ITERS: u64 = 64;

    /// Direct (traceless) evaluation: EDC-aware steady state + power.
    /// Orders of magnitude faster than a full session run; the parameter
    /// sweeps live on this. The §III-D data effect is included: the
    /// payload's trivial fraction comes from a cached functional pass
    /// ([`InitScheme::V2Safe`], the engine seed,
    /// [`Engine::EVAL_FUNCTIONAL_ITERS`] iterations), so a
    /// trivial-heavy payload evaluates to a different operating point
    /// than a dense one.
    pub fn eval(&self, config: &PayloadConfig, freq_mhz: f64) -> ThrottleResult {
        self.eval_init(config, freq_mhz, InitScheme::V2Safe)
    }

    /// [`Engine::eval`] under an explicit init scheme (the v1.74 buggy
    /// initialization drives most payloads trivial, which shifts the
    /// operating point — the §III-D regression hook).
    pub fn eval_init(
        &self,
        config: &PayloadConfig,
        freq_mhz: f64,
        init: InitScheme,
    ) -> ThrottleResult {
        let key = PayloadKey::of(&self.sku, config);
        let entry = self.entry_with(&key, config);
        let decoded = self.decoded_of(&entry);
        let outcome = self.functional_outcome_keyed(
            key,
            &decoded,
            init,
            self.seed,
            Engine::EVAL_FUNCTIONAL_ITERS,
        );
        self.eval_payload(&entry.payload, freq_mhz, outcome.stats.trivial_fraction())
    }

    /// Raw operating-point solve for an already-built payload with an
    /// explicit trivial fraction (no cache traffic; callers that hold a
    /// `Payload` but no config, e.g. ablation experiments).
    pub fn eval_payload(
        &self,
        payload: &Payload,
        freq_mhz: f64,
        trivial_fraction: f64,
    ) -> ThrottleResult {
        self.evals.fetch_add(1, Ordering::Relaxed);
        solve_throttle(
            &self.sim,
            &self.power_model,
            &payload.kernel,
            freq_mhz,
            None,
            trivial_fraction,
        )
    }

    /// Batched traceless evaluation: one payload fetch, one memoized
    /// decode, and one cached functional pass per request serve every
    /// requested frequency — the fleet table build asks for all of a
    /// class's P-states in one request instead of per-node solves.
    /// Results are bit-identical to calling [`Engine::eval_init`] per
    /// `(config, freq)` pair, in request order.
    pub fn eval_batch(&self, requests: &[EvalRequest]) -> Vec<EvalBatch> {
        requests
            .iter()
            .map(|req| {
                let key = PayloadKey::of(&self.sku, &req.config);
                let entry = self.entry_with(&key, &req.config);
                let decoded = self.decoded_of(&entry);
                let outcome = self.functional_outcome_keyed(
                    key,
                    &decoded,
                    req.init,
                    self.seed,
                    Engine::EVAL_FUNCTIONAL_ITERS,
                );
                let trivial_fraction = outcome.stats.trivial_fraction();
                EvalBatch {
                    trivial_fraction,
                    points: req
                        .freqs_mhz
                        .iter()
                        .map(|&f| self.eval_payload(&entry.payload, f, trivial_fraction))
                        .collect(),
                }
            })
            .collect()
    }

    /// Number of [`Engine::eval`] operating-point solves so far (the
    /// registry aggregates this across engines for fleet reports).
    pub fn eval_count(&self) -> u64 {
        self.evals.load(Ordering::Relaxed)
    }

    /// A fresh measurement session on its own simulated clock, seeded
    /// with the engine default.
    pub fn session(&self) -> Session<'_> {
        self.session_with_seed(self.seed)
    }

    /// A fresh measurement session with an explicit seed.
    pub fn session_with_seed(&self, seed: u64) -> Session<'_> {
        Session {
            engine: self,
            runner: Runner::with_seed(self.sku.clone(), seed),
        }
    }

    /// One-shot measurement: fresh session, cached payload, single run.
    pub fn measure(&self, config: &PayloadConfig, run_cfg: &RunConfig) -> RunResult {
        self.session().run(config, run_cfg)
    }

    /// Evaluates `worker` over `items` on up to `threads` OS threads
    /// (scoped; no detached state). Items are pulled from a shared work
    /// queue, results land in input order. `threads == 0` uses the host
    /// parallelism. Every worker sees the same `&Engine` — payload-cache
    /// hits are shared across the sweep.
    ///
    /// Item evaluations must be independent (each typically opens its own
    /// [`Session`]); under that contract the result vector is
    /// bitwise-identical to a serial `items.iter().map(...)` pass.
    pub fn sweep<T, R, F>(&self, items: &[T], threads: usize, worker: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&Engine, usize, &T) -> R + Sync,
    {
        let order: Vec<usize> = (0..items.len()).collect();
        self.sweep_ordered(items, threads, order, worker)
    }

    /// [`Engine::sweep`] with a per-item size hint (arbitrary cost
    /// units, larger = longer). The work queue serves items in
    /// descending hint order — longest-processing-time-first packing —
    /// so a long NSGA-II tuning next to 10 s measurement runs no longer
    /// strands the other workers behind it at the tail of the queue.
    /// Results still land in input order, and because hints only
    /// reorder *execution*, the result vector stays bitwise-identical
    /// to [`Engine::sweep`] and to a serial pass.
    pub fn sweep_hinted<T, R, F, H>(
        &self,
        items: &[T],
        threads: usize,
        size_hint: H,
        worker: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&Engine, usize, &T) -> R + Sync,
        H: Fn(usize, &T) -> u64,
    {
        let mut order: Vec<usize> = (0..items.len()).collect();
        // Stable sort: ties keep input order, so equal-cost sweeps
        // behave exactly like the unhinted queue. Cached key: the
        // caller's hint closure runs exactly once per item.
        order.sort_by_cached_key(|&i| std::cmp::Reverse(size_hint(i, &items[i])));
        self.sweep_ordered(items, threads, order, worker)
    }

    /// Shared sweep core: a claim-by-index queue over `order`, results
    /// written to input-order slots.
    fn sweep_ordered<T, R, F>(
        &self,
        items: &[T],
        threads: usize,
        order: Vec<usize>,
        worker: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&Engine, usize, &T) -> R + Sync,
    {
        debug_assert_eq!(order.len(), items.len());
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        }
        .min(items.len().max(1));

        if threads <= 1 || items.len() <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| worker(self, i, item))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= order.len() {
                        break;
                    }
                    let i = order[k];
                    let r = worker(self, i, &items[i]);
                    *slots[i].lock().expect("sweep slot poisoned") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("sweep slot poisoned")
                    .expect("every queue index was claimed exactly once")
            })
            .collect()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("sku", &self.sku.name)
            .field("seed", &self.seed)
            .field("cache", &self.cache_stats())
            .finish()
    }
}

/// One measurement session: a [`Runner`] (simulated clock, session-long
/// power trace, thermal state) bound to its engine's payload cache.
/// Everything the CLI, the experiments and the tuning loop previously
/// wired by hand goes through here.
pub struct Session<'e> {
    engine: &'e Engine,
    runner: Runner,
}

impl<'e> Session<'e> {
    /// The engine this session draws payloads from.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    pub fn sku(&self) -> &Sku {
        self.runner.sku()
    }

    /// Runs the cached payload for `config` under `run_cfg`, advancing
    /// the session clock. Goes through all three engine cache tiers
    /// (payload → decoded kernel → ExecStats); see [`Engine::run_on`].
    pub fn run(&mut self, config: &PayloadConfig, run_cfg: &RunConfig) -> RunResult {
        self.engine.run_on(&mut self.runner, config, run_cfg)
    }

    /// Runs the cached payload for a group string (default mix/unroll).
    pub fn run_spec(
        &mut self,
        spec: &str,
        run_cfg: &RunConfig,
    ) -> Result<RunResult, GroupParseError> {
        let config = self.engine.config_for_spec(spec)?;
        Ok(self.run(&config, run_cfg))
    }

    /// Runs an already-built payload (e.g. one handed out by
    /// [`Engine::payload`] before a sweep).
    pub fn run_payload(&mut self, payload: &Payload, run_cfg: &RunConfig) -> RunResult {
        self.runner.run(payload, run_cfg)
    }

    /// Runs a raw kernel (baselines, hand-built ablation kernels).
    pub fn run_kernel(&mut self, kernel: &fs2_sim::Kernel, run_cfg: &RunConfig) -> RunResult {
        self.runner.run_kernel(kernel, run_cfg)
    }

    /// Runs the §III-C self-tuning loop inside this session; candidate
    /// payloads come from the engine cache.
    pub fn tune(&mut self, cfg: &crate::autotune::TuneConfig) -> crate::autotune::TuneResult {
        crate::autotune::AutoTuner::run_with_engine(self.engine, &mut self.runner, cfg)
    }

    /// Records idle time on the session trace.
    pub fn idle(&mut self, duration_s: f64, sample_rate_hz: f64) {
        self.runner.idle(duration_s, sample_rate_hz);
    }

    /// Records constant-power time (preheat etc.) on the session trace.
    pub fn hold_power(&mut self, duration_s: f64, sample_rate_hz: f64, base_w: f64) {
        self.runner.hold_power(duration_s, sample_rate_hz, base_w);
    }

    /// Arms a single-bit register fault for the next error-detection run.
    pub fn inject_fault_next_run(&mut self, lane: usize, reg: usize, bit: u32) {
        self.runner.inject_fault_next_run(lane, reg, bit);
    }

    /// The session-long power trace.
    pub fn trace(&self) -> &fs2_metrics::TimeSeries {
        self.runner.trace()
    }

    /// The session clock.
    pub fn clock(&self) -> &fs2_sim::SimClock {
        self.runner.clock()
    }

    pub fn power_model(&self) -> &NodePowerModel {
        self.runner.power_model()
    }

    /// Escape hatch for consumers that still take `&mut Runner` (legacy
    /// baselines, the v1.x tuning prototype).
    pub fn runner_mut(&mut self) -> &mut Runner {
        &mut self.runner
    }

    pub fn runner(&self) -> &Runner {
        &self.runner
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("sku", &self.runner.sku().name)
            .field("t_s", &self.runner.clock().now_secs())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::parse_groups;

    fn engine() -> Engine {
        Engine::new(Sku::amd_epyc_7502())
    }

    fn quick_cfg(freq: f64) -> RunConfig {
        RunConfig {
            freq_mhz: freq,
            duration_s: 10.0,
            start_delta_s: 2.0,
            stop_delta_s: 1.0,
            functional_iters: 200,
            ..RunConfig::default()
        }
    }

    #[test]
    fn payload_cache_hits_and_misses_are_counted() {
        let e = engine();
        let cfg = e.config_for_spec("REG:4,L1_L:2,L2_L:1").unwrap();
        assert_eq!(e.cache_stats().requests(), 0);

        let p1 = e.payload(&cfg);
        let s = e.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 1, 1));

        let p2 = e.payload(&cfg);
        let s = e.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(Arc::ptr_eq(&p1, &p2), "hit must return the cached payload");

        // A different unroll is a different workload.
        let mut cfg2 = cfg.clone();
        cfg2.unroll += 7;
        let _ = e.payload(&cfg2);
        let s = e.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 2));
    }

    #[test]
    fn cached_payload_is_identical_to_fresh_build() {
        let e = engine();
        let cfg = e.config_for_spec("REG:2,L1_LS:1,RAM_P:1").unwrap();
        let cached = e.payload(&cfg);
        let cached_again = e.payload(&cfg);
        let fresh = build_payload(e.sku(), &cfg);
        assert_eq!(cached.machine_code, fresh.machine_code);
        assert_eq!(cached_again.machine_code, fresh.machine_code);
        assert_eq!(cached.kernel, fresh.kernel);
        assert_eq!(cached.sequence, fresh.sequence);
    }

    #[test]
    fn session_run_equals_direct_runner_path() {
        let e = engine();
        let cfg = e.config_for_spec("REG:1").unwrap();
        let run_cfg = quick_cfg(1500.0);
        let via_session = e.session().run(&cfg, &run_cfg);

        let payload = build_payload(e.sku(), &cfg);
        let mut runner = Runner::with_seed(e.sku().clone(), e.seed());
        let direct = runner.run(&payload, &run_cfg);
        assert_eq!(via_session.power, direct.power);
        assert_eq!(via_session.applied_freq_mhz, direct.applied_freq_mhz);
        assert_eq!(via_session.ipc, direct.ipc);
    }

    #[test]
    fn sweep_parallel_matches_serial_bitwise() {
        let e = engine();
        let specs = [
            "REG:1",
            "REG:4,L1_L:2",
            "REG:4,L1_2LS:2,L2_LS:1",
            "REG:6,L1_2LS:3,L2_LS:1,L3_LS:1",
            "REG:8,L1_2LS:4,L2_LS:1,L3_LS:1,RAM_LS:1",
            "REG:2,RAM_LS:2",
            "L1_L:1",
            "REG:10,L1_2LS:4,L2_LS:2,L3_LS:1,RAM_L:1",
        ];
        let worker = |e: &Engine, _i: usize, spec: &&str| {
            let cfg = e.config_for_spec(spec).unwrap();
            let r = e.session().run(&cfg, &quick_cfg(1500.0));
            (r.power, r.applied_freq_mhz, r.ipc, r.events)
        };
        let serial = e.sweep(&specs, 1, worker);
        let parallel = e.sweep(&specs, 4, worker);
        assert_eq!(serial, parallel);
        // And the sweep populated the shared cache once per spec.
        assert_eq!(e.cache_stats().entries, specs.len());
    }

    #[test]
    fn sweep_preserves_input_order() {
        let e = engine();
        let items: Vec<usize> = (0..100).collect();
        let out = e.sweep(&items, 8, |_, i, &item| {
            assert_eq!(i, item);
            item * 3
        });
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn eval_matches_runner_scale() {
        let e = engine();
        let cfg = e.config_for_spec("REG:1").unwrap();
        assert_eq!(e.eval_count(), 0);
        let r = e.eval(&cfg, 1500.0);
        assert!((180.0..280.0).contains(&r.power.total_w()));
        let _ = e.eval(&cfg, 2200.0);
        assert_eq!(e.eval_count(), 2, "eval counter must track solves");
        // Both evals share one cached functional pass for the trivial
        // fraction.
        let s = e.cache_stats();
        assert_eq!((s.exec_misses, s.exec_hits), (1, 1));
    }

    #[test]
    fn trivial_heavy_payload_changes_the_eval_point() {
        // §III-D: operand values matter. The v1.74 buggy init drives
        // nearly every FMA operand denormal/trivial, which the power
        // composition discounts — the same workload must evaluate to a
        // different (lower-power) operating point than under the safe
        // init, i.e. the cached trivial fraction is actually wired into
        // `Engine::eval`, not hard-coded to 0.0.
        let e = engine();
        let cfg = e.config_for_spec("REG:4,L1_L:2").unwrap();
        let dense = e.eval(&cfg, 1500.0);
        let trivial = e.eval_init(&cfg, 1500.0, InitScheme::V174Buggy);
        assert!(
            trivial.power.total_w() < dense.power.total_w(),
            "trivial-heavy payload must evaluate below the dense point \
             ({} W !< {} W)",
            trivial.power.total_w(),
            dense.power.total_w()
        );
    }

    #[test]
    fn eval_batch_matches_per_call_eval_bitwise() {
        let e = engine();
        let specs = ["REG:1", "REG:4,L1_L:2", "REG:2,RAM_LS:2"];
        let freqs = [1200.0, 1500.0, 2200.0];
        let requests: Vec<EvalRequest> = specs
            .iter()
            .map(|s| EvalRequest {
                config: e.config_for_spec(s).unwrap(),
                init: InitScheme::V2Safe,
                freqs_mhz: freqs.to_vec(),
            })
            .collect();
        let batched = e.eval_batch(&requests);

        let fresh = engine();
        for (req, batch) in requests.iter().zip(&batched) {
            assert_eq!(batch.points.len(), freqs.len());
            for (&f, point) in freqs.iter().zip(&batch.points) {
                let single = fresh.eval(&req.config, f);
                assert_eq!(point.power, single.power);
                assert_eq!(point.applied_mhz.to_bits(), single.applied_mhz.to_bits());
            }
        }
        // One functional pass per distinct workload serves all freqs.
        let s = e.cache_stats();
        assert_eq!(s.exec_misses as usize, specs.len());
        assert_eq!(e.eval_count(), (specs.len() * freqs.len()) as u64);
    }

    #[test]
    fn concurrent_payload_requests_converge_to_one_entry() {
        let e = engine();
        let cfg = e.config_for_spec("REG:4,L1_L:2,L2_L:1").unwrap();
        let items = vec![(); 16];
        let payloads = e.sweep(&items, 8, |e, _, _| e.payload(&cfg));
        let s = e.cache_stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.requests(), 16);
        // Whatever raced, everyone must observe identical bytes.
        for p in &payloads {
            assert_eq!(p.machine_code, payloads[0].machine_code);
        }
    }

    #[test]
    fn bad_spec_is_reported() {
        let e = engine();
        assert!(e.payload_for_spec("L9_X:1").is_err());
        assert!(parse_groups("L9_X:1").is_err());
    }

    #[test]
    fn many_threads_one_key_counts_one_miss() {
        // Regression: concurrent misses on the same key used to count one
        // miss *per builder*. With entry-based insertion exactly one
        // thread counts the miss, losers count as hits, and every caller
        // gets the winner's Arc — whatever the interleaving.
        let e = engine();
        let cfg = e.config_for_spec("REG:4,L1_L:2,L2_L:1").unwrap();
        const N: usize = 16;
        let barrier = std::sync::Barrier::new(N);
        let payloads: Vec<Arc<Payload>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..N)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait(); // maximize same-key contention
                        e.payload(&cfg)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let s = e.cache_stats();
        assert_eq!(s.misses, 1, "racing builders must count one miss");
        assert_eq!(s.hits, (N - 1) as u64);
        assert_eq!(s.entries, 1);
        let cached = e.payload(&cfg);
        for p in &payloads {
            assert!(
                Arc::ptr_eq(p, &cached),
                "every caller must observe the single cached Arc"
            );
        }
    }

    #[test]
    fn decoded_kernel_is_memoized_per_payload_entry() {
        let e = engine();
        let cfg = e.config_for_spec("REG:2,L1_LS:1").unwrap();
        let (p1, d1) = e.payload_decoded(&cfg);
        let (p2, d2) = e.payload_decoded(&cfg);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert!(Arc::ptr_eq(&d1, &d2), "decode must run once per entry");
        let s = e.cache_stats();
        assert_eq!((s.decoded_hits, s.decoded_misses), (1, 1));
        // A different payload gets its own table.
        let cfg2 = e.config_for_spec("REG:1").unwrap();
        let (_, d3) = e.payload_decoded(&cfg2);
        assert!(!Arc::ptr_eq(&d1, &d3));
        assert_eq!(e.cache_stats().decoded_misses, 2);
    }

    #[test]
    fn exec_stats_cache_hits_are_bit_identical() {
        let e = engine();
        let cfg = e.config_for_spec("REG:2,L1_LS:1").unwrap();
        let cold = e.functional_outcome(&cfg, InitScheme::V2Safe, 7, 120);
        let warm = e.functional_outcome(&cfg, InitScheme::V2Safe, 7, 120);
        assert!(Arc::ptr_eq(&cold, &warm), "hit must return the cached Arc");
        let s = e.cache_stats();
        assert_eq!((s.exec_hits, s.exec_misses, s.exec_entries), (1, 1, 1));

        // The cached outcome equals an uncached executor pass, bit for bit.
        let (_, decoded) = e.payload_decoded(&cfg);
        let live = fs2_sim::run_functional(&decoded, InitScheme::V2Safe, 7, 120);
        assert_eq!(*cold, live);

        // Init scheme, seed, and iteration count are all part of the key.
        let _ = e.functional_outcome(&cfg, InitScheme::V174Buggy, 7, 120);
        let _ = e.functional_outcome(&cfg, InitScheme::V2Safe, 8, 120);
        let _ = e.functional_outcome(&cfg, InitScheme::V2Safe, 7, 121);
        assert_eq!(e.cache_stats().exec_entries, 4);
    }

    #[test]
    fn session_run_hits_exec_cache_on_repeat() {
        let e = engine();
        let cfg = e.config_for_spec("REG:2,L1_LS:1").unwrap();
        let run_cfg = quick_cfg(1500.0);
        let first = e.session().run(&cfg, &run_cfg);
        let second = e.session().run(&cfg, &run_cfg);
        assert_eq!(first.power, second.power);
        assert_eq!(first.trivial_fraction, second.trivial_fraction);
        let s = e.cache_stats();
        assert_eq!(s.exec_misses, 1, "one live functional pass");
        assert_eq!(s.exec_hits, 1, "repeat run must be served from cache");
        assert_eq!(s.decoded_misses, 1, "one decode for both runs");
    }

    #[test]
    fn fault_injection_bypasses_the_exec_cache() {
        let e = engine();
        let cfg = e.config_for_spec("REG:2,L1_LS:1").unwrap();
        let mut run_cfg = quick_cfg(1500.0);
        run_cfg.error_detection = true;

        // Warm every tier with a clean run.
        let clean = e.session().run(&cfg, &run_cfg);
        assert_eq!(clean.error_check_passed, Some(true));
        let warm = e.cache_stats();

        // An armed fault must replay the functional pass live and detect
        // the divergence — a cached outcome would report a clean pass.
        let mut session = e.session();
        session.inject_fault_next_run(2, 5, 51);
        let faulted = session.run(&cfg, &run_cfg);
        assert_eq!(faulted.error_check_passed, Some(false));
        let s = e.cache_stats();
        assert_eq!(s.exec_hits, warm.exec_hits, "fault run must not hit");
        assert_eq!(s.exec_misses, warm.exec_misses, "fault run must not fill");

        // The fault is one-shot: the next run is clean and cache-served.
        let after = session.run(&cfg, &run_cfg);
        assert_eq!(after.error_check_passed, Some(true));
        assert_eq!(e.cache_stats().exec_hits, warm.exec_hits + 1);
    }

    #[test]
    fn concurrent_exec_requests_converge_to_one_entry() {
        let e = engine();
        let cfg = e.config_for_spec("REG:2,L1_LS:1").unwrap();
        let items = vec![(); 8];
        let outcomes = e.sweep(&items, 4, |e, _, _| {
            e.functional_outcome(&cfg, InitScheme::V2Safe, 5, 100)
        });
        let s = e.cache_stats();
        assert_eq!(s.exec_entries, 1);
        assert_eq!(s.exec_misses, 1, "racing passes must count one miss");
        assert_eq!(s.exec_hits + s.exec_misses, 8);
        for o in &outcomes {
            assert_eq!(o.state_hash, outcomes[0].state_hash);
        }
    }

    #[test]
    fn sweep_handles_empty_items() {
        let e = engine();
        let items: [u32; 0] = [];
        let out = e.sweep(&items, 4, |_, _, &x| x * 2);
        assert!(out.is_empty());
        let out = e.sweep_hinted(&items, 4, |_, _| 1, |_, _, &x| x * 2);
        assert!(out.is_empty());
    }

    #[test]
    fn sweep_with_more_threads_than_items() {
        let e = engine();
        let items = [10u32, 20, 30];
        let out = e.sweep(&items, 64, |_, i, &x| (i, x + 1));
        assert_eq!(out, vec![(0, 11), (1, 21), (2, 31)]);
    }

    #[test]
    fn sweep_zero_threads_on_single_item() {
        // threads == 0 means "host parallelism"; with one item it must
        // degrade to the serial path, not spawn an empty pool.
        let e = engine();
        let items = [7u64];
        let out = e.sweep(&items, 0, |_, i, &x| x + i as u64);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn sweep_hinted_matches_unhinted_bitwise() {
        let e = engine();
        let items: Vec<usize> = (0..40).collect();
        // Long-tailed costs: item 0 is the most expensive, descending.
        let worker = |e: &Engine, i: usize, item: &usize| {
            let cfg = e.config_for_spec("REG:2,L1_LS:1").unwrap();
            let r = e.eval(&cfg, 1500.0);
            (i, *item, r.power.total_w().to_bits())
        };
        let plain = e.sweep(&items, 4, worker);
        let hinted = e.sweep_hinted(&items, 4, |i, _| (items.len() - i) as u64, worker);
        let serial = e.sweep(&items, 1, worker);
        assert_eq!(plain, hinted);
        assert_eq!(hinted, serial);
    }
}
