//! Instruction sets `I` (`--avail` / `--function`).
//!
//! §III: the workload "typically uses the widest supported
//! SIMD-Floating-Point-instructions with the highest complexity (Fused
//! Multiply-Add, FMA if available) that can run in a pipelined mode
//! without any stalls. Additionally, I contains integer instructions,
//! which increases parallelism and power consumption further."
//!
//! The paper's Zen 2 case study (§IV-B) reuses the Intel Haswell mix of
//! FIRESTARTER 1.1: two `vfmadd231pd` plus two ALU instructions
//! (xor + alternating shl/shr toggling `0b0101…01` ↔ `0b1010…10`),
//! saturating the four-wide decoder. "Optional stores replace some
//! instructions with vmovapds."
//!
//! We explicitly exclude `I` from tuning, as the paper does: poorly
//! chosen instructions produce overflows/denormals and lower power.

use crate::groups::Pattern;
use fs2_arch::{MemLevel, Microarch};
use fs2_isa::prelude::*;
use fs2_sim::kernel::TaggedInst;

/// Pointer register assigned to each memory level's access stream.
pub fn level_pointer(level: MemLevel) -> Gp {
    match level {
        MemLevel::L1 => Gp::Rbx,
        MemLevel::L2 => Gp::Rcx,
        MemLevel::L3 => Gp::Rsi,
        MemLevel::Ram => Gp::R8,
    }
}

/// Synthetic base address loaded into each level pointer (distinct spaces
/// so functional execution keeps streams apart).
pub fn level_base_addr(level: MemLevel) -> u64 {
    match level {
        MemLevel::L1 => 0x0010_0000,
        MemLevel::L2 => 0x0100_0000,
        MemLevel::L3 => 0x1000_0000,
        MemLevel::Ram => 0x4000_0000,
    }
}

/// The mix families shipped with FIRESTARTER 2's reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixKind {
    /// 2× FMA + 2× ALU (the FIRESTARTER 1.1 Haswell mix; default on
    /// FMA-capable parts).
    FmaAvx2,
    /// 1× vmulpd + 1× vaddpd + 2× ALU (pre-FMA AVX parts / fallback).
    AvxMulAdd,
    /// The deliberately low-power `sqrtsd` loop of Fig. 2.
    SqrtLowPower,
}

/// A named instruction set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstructionMix {
    pub kind: MixKind,
    pub name: &'static str,
    pub description: &'static str,
}

/// FMA accumulator registers rotate over ymm0..=ymm9; ymm10/11 are
/// scratch for explicit loads; ymm12..=15 hold multiplier constants.
const ACCUMULATORS: u8 = 10;
const SCRATCH: u8 = 10;

impl InstructionMix {
    pub const FMA: InstructionMix = InstructionMix {
        kind: MixKind::FmaAvx2,
        name: "FMA",
        description: "2x vfmadd231pd + xor + alternating shl/shr (Haswell/Zen2 mix)",
    };

    pub const AVX: InstructionMix = InstructionMix {
        kind: MixKind::AvxMulAdd,
        name: "AVX",
        description: "vmulpd + vaddpd + xor + alternating shl/shr (pre-FMA parts)",
    };

    pub const SQRT: InstructionMix = InstructionMix {
        kind: MixKind::SqrtLowPower,
        name: "SQRT",
        description: "scalar sqrtsd chain (low-power reference loop)",
    };

    fn alu_shift(g: u32) -> Inst {
        // Alternating shl/shr toggles between 0b0101…01 and 0b1010…10.
        if g.is_multiple_of(2) {
            Inst::ShlImm {
                dst: Gp::Rdx,
                imm: 1,
            }
        } else {
            Inst::ShrImm {
                dst: Gp::Rdx,
                imm: 1,
            }
        }
    }

    fn fma(dst: u8, g: u32) -> Inst {
        Inst::Vfmadd231pd {
            dst: Ymm::new(dst),
            src1: Ymm::new(12 + (g % 2) as u8),
            src2: RmYmm::Reg(Ymm::new(14 + (g % 2) as u8)),
        }
    }

    /// Emits one instruction set (group `g` of the unrolled loop), with
    /// an optional memory access folded in per the pattern rules.
    pub fn emit_group(&self, g: u32, access: Option<(MemLevel, Pattern)>) -> Vec<TaggedInst> {
        match self.kind {
            MixKind::FmaAvx2 => self.emit_fma_group(g, access),
            MixKind::AvxMulAdd => self.emit_avx_group(g, access),
            MixKind::SqrtLowPower => self.emit_sqrt_group(g, access),
        }
    }

    fn emit_fma_group(&self, g: u32, access: Option<(MemLevel, Pattern)>) -> Vec<TaggedInst> {
        let acc1 = (g % u32::from(ACCUMULATORS)) as u8;
        let acc2 = ((g + 5) % u32::from(ACCUMULATORS)) as u8;
        let fma1 = Self::fma(acc1, g);
        let fma2 = Self::fma(acc2, g + 1);
        let alu_xor = Inst::XorGp {
            dst: Gp::R9,
            src: Gp::R10,
        };
        let shift = Self::alu_shift(g);

        let Some((level, pattern)) = access else {
            // Register-only group: 2× FMA + 2× ALU = 4 µops/cycle.
            return vec![
                TaggedInst::reg(fma1),
                TaggedInst::reg(alu_xor),
                TaggedInst::reg(fma2),
                TaggedInst::reg(shift),
            ];
        };

        let ptr = level_pointer(level);
        let advance = TaggedInst::reg(Inst::AddImm { dst: ptr, imm: 64 });
        let mem0 = Mem::base(ptr);
        let mem32 = Mem::base_disp(ptr, 32);
        let fma1_mem = Inst::Vfmadd231pd {
            dst: Ymm::new(acc1),
            src1: Ymm::new(12 + (g % 2) as u8),
            src2: RmYmm::Mem(mem0),
        };
        let store = Inst::VmovapdStore {
            dst: mem32,
            src: Ymm::new(acc2),
        };
        match pattern {
            Pattern::Load => vec![
                TaggedInst::mem(fma1_mem, level),
                advance,
                TaggedInst::reg(fma2),
                TaggedInst::reg(shift),
            ],
            Pattern::Store => vec![
                TaggedInst::reg(fma1),
                advance,
                TaggedInst::reg(fma2),
                TaggedInst::mem(store, level),
            ],
            Pattern::LoadStore => vec![
                TaggedInst::mem(fma1_mem, level),
                advance,
                TaggedInst::reg(fma2),
                TaggedInst::mem(store, level),
            ],
            Pattern::TwoLoadsStore => vec![
                TaggedInst::mem(fma1_mem, level),
                TaggedInst::mem(
                    Inst::VmovapdLoad {
                        dst: Ymm::new(SCRATCH),
                        src: mem32,
                    },
                    level,
                ),
                TaggedInst::reg(fma2),
                TaggedInst::mem(store, level),
                advance,
            ],
            Pattern::Prefetch => {
                let hint = match level {
                    MemLevel::L2 => PrefetchHint::T1,
                    MemLevel::L3 => PrefetchHint::T2,
                    _ => PrefetchHint::T2,
                };
                vec![
                    TaggedInst::reg(fma1),
                    TaggedInst::mem(Inst::Prefetch { hint, mem: mem0 }, level),
                    TaggedInst::reg(fma2),
                    advance,
                ]
            }
        }
    }

    fn emit_avx_group(&self, g: u32, access: Option<(MemLevel, Pattern)>) -> Vec<TaggedInst> {
        let acc1 = (g % u32::from(ACCUMULATORS)) as u8;
        let acc2 = ((g + 5) % u32::from(ACCUMULATORS)) as u8;
        let mul = Inst::Vmulpd {
            dst: Ymm::new(acc1),
            src1: Ymm::new(acc1),
            src2: RmYmm::Reg(Ymm::new(12 + (g % 2) as u8)),
        };
        let add = Inst::Vaddpd {
            dst: Ymm::new(acc2),
            src1: Ymm::new(acc2),
            src2: RmYmm::Reg(Ymm::new(14 + (g % 2) as u8)),
        };
        let alu_xor = Inst::XorGp {
            dst: Gp::R9,
            src: Gp::R10,
        };
        let shift = Self::alu_shift(g);

        let Some((level, pattern)) = access else {
            return vec![
                TaggedInst::reg(mul),
                TaggedInst::reg(alu_xor),
                TaggedInst::reg(add),
                TaggedInst::reg(shift),
            ];
        };
        let ptr = level_pointer(level);
        let advance = TaggedInst::reg(Inst::AddImm { dst: ptr, imm: 64 });
        let mem0 = Mem::base(ptr);
        let mem32 = Mem::base_disp(ptr, 32);
        let mul_mem = Inst::Vmulpd {
            dst: Ymm::new(acc1),
            src1: Ymm::new(acc1),
            src2: RmYmm::Mem(mem0),
        };
        let store = Inst::VmovapdStore {
            dst: mem32,
            src: Ymm::new(acc2),
        };
        match pattern {
            Pattern::Load => vec![
                TaggedInst::mem(mul_mem, level),
                advance,
                TaggedInst::reg(add),
                TaggedInst::reg(shift),
            ],
            Pattern::Store => vec![
                TaggedInst::reg(mul),
                advance,
                TaggedInst::reg(add),
                TaggedInst::mem(store, level),
            ],
            Pattern::LoadStore => vec![
                TaggedInst::mem(mul_mem, level),
                advance,
                TaggedInst::reg(add),
                TaggedInst::mem(store, level),
            ],
            Pattern::TwoLoadsStore => vec![
                TaggedInst::mem(mul_mem, level),
                TaggedInst::mem(
                    Inst::VmovapdLoad {
                        dst: Ymm::new(SCRATCH),
                        src: mem32,
                    },
                    level,
                ),
                TaggedInst::reg(add),
                TaggedInst::mem(store, level),
                advance,
            ],
            Pattern::Prefetch => vec![
                TaggedInst::reg(mul),
                TaggedInst::mem(
                    Inst::Prefetch {
                        hint: PrefetchHint::T2,
                        mem: mem0,
                    },
                    level,
                ),
                TaggedInst::reg(add),
                advance,
            ],
        }
    }

    fn emit_sqrt_group(&self, g: u32, access: Option<(MemLevel, Pattern)>) -> Vec<TaggedInst> {
        // The low-power loop: a serial sqrt chain, one µop per set. Memory
        // patterns are honoured with a plain load so the grammar stays
        // total, but the canonical Fig. 2 configuration is REG-only.
        let sqrt = Inst::Sqrtsd {
            dst: Xmm::new((g % 4) as u8),
            src: Xmm::new((g % 4) as u8),
        };
        match access {
            None => vec![TaggedInst::reg(sqrt)],
            Some((level, _)) => {
                let ptr = level_pointer(level);
                vec![
                    TaggedInst::reg(sqrt),
                    TaggedInst::mem(
                        Inst::VmovapdLoad {
                            dst: Ymm::new(SCRATCH),
                            src: Mem::base(ptr),
                        },
                        level,
                    ),
                    TaggedInst::reg(Inst::AddImm { dst: ptr, imm: 64 }),
                ]
            }
        }
    }
}

/// The `--avail` registry.
#[derive(Debug, Clone, Default)]
pub struct MixRegistry;

impl MixRegistry {
    /// Mixes available on a microarchitecture, default first.
    pub fn available_for(uarch: Microarch) -> Vec<InstructionMix> {
        match uarch {
            Microarch::Zen2 | Microarch::Haswell => {
                vec![
                    InstructionMix::FMA,
                    InstructionMix::AVX,
                    InstructionMix::SQRT,
                ]
            }
            Microarch::Generic => vec![InstructionMix::AVX, InstructionMix::SQRT],
        }
    }

    /// The default mix FIRESTARTER would pick for the detected CPU.
    pub fn default_for(uarch: Microarch) -> InstructionMix {
        Self::available_for(uarch)[0]
    }

    /// Lookup by `--function` name (case-insensitive).
    pub fn by_name(uarch: Microarch, name: &str) -> Option<InstructionMix> {
        Self::available_for(uarch)
            .into_iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs2_isa::meta::sequence_meta;

    fn insts(tagged: &[TaggedInst]) -> Vec<Inst> {
        tagged.iter().map(|t| t.inst).collect()
    }

    #[test]
    fn fma_reg_group_is_two_fma_two_alu() {
        let group = InstructionMix::FMA.emit_group(0, None);
        let m = sequence_meta(&insts(&group));
        assert_eq!(group.len(), 4);
        assert_eq!(m.fp_fma, 2);
        assert_eq!(m.alu, 2);
        assert_eq!(m.load + m.store, 0);
    }

    #[test]
    fn shift_alternates_between_groups() {
        let g0 = InstructionMix::FMA.emit_group(0, None);
        let g1 = InstructionMix::FMA.emit_group(1, None);
        assert!(matches!(g0[3].inst, Inst::ShlImm { .. }));
        assert!(matches!(g1[3].inst, Inst::ShrImm { .. }));
    }

    #[test]
    fn accumulators_rotate() {
        let dsts: Vec<u8> = (0..20)
            .map(|g| match InstructionMix::FMA.emit_group(g, None)[0].inst {
                Inst::Vfmadd231pd { dst, .. } => dst.num(),
                _ => panic!("first inst must be FMA"),
            })
            .collect();
        // All ten accumulators are used.
        let unique: std::collections::HashSet<u8> = dsts.iter().copied().collect();
        assert_eq!(unique.len(), ACCUMULATORS as usize);
        // Multiplier constants are never overwritten.
        assert!(dsts.iter().all(|&d| d < 12));
    }

    #[test]
    fn load_pattern_micro_fuses_into_fma() {
        let group = InstructionMix::FMA.emit_group(0, Some((MemLevel::L2, Pattern::Load)));
        let m = sequence_meta(&insts(&group));
        assert_eq!(m.fp_fma, 2); // both FMAs still execute
        assert_eq!(m.load, 1);
        assert_eq!(m.store, 0);
        assert_eq!(m.mem_bytes, 32);
        assert_eq!(group[0].level, Some(MemLevel::L2));
        // Pointer advance targets the right register.
        assert!(group.iter().any(|t| matches!(
            t.inst,
            Inst::AddImm { dst, .. } if dst == level_pointer(MemLevel::L2)
        )));
    }

    #[test]
    fn store_pattern_replaces_shift_with_vmovapd() {
        // "Optional stores replace some instructions with vmovapds."
        let group = InstructionMix::FMA.emit_group(0, Some((MemLevel::L1, Pattern::Store)));
        let m = sequence_meta(&insts(&group));
        assert_eq!(m.store, 1);
        assert_eq!(m.load, 0);
        assert!(group
            .iter()
            .all(|t| !matches!(t.inst, Inst::ShlImm { .. } | Inst::ShrImm { .. })));
    }

    #[test]
    fn two_loads_store_pattern_counts() {
        let group = InstructionMix::FMA.emit_group(3, Some((MemLevel::L1, Pattern::TwoLoadsStore)));
        let m = sequence_meta(&insts(&group));
        assert_eq!(m.load, 2);
        assert_eq!(m.store, 1);
        assert_eq!(m.mem_bytes, 96);
    }

    #[test]
    fn prefetch_pattern_uses_line_granularity() {
        let group = InstructionMix::FMA.emit_group(0, Some((MemLevel::Ram, Pattern::Prefetch)));
        let m = sequence_meta(&insts(&group));
        assert_eq!(m.mem_bytes, 64);
        assert!(group.iter().any(|t| t.inst.is_prefetch()));
    }

    #[test]
    fn avx_mix_has_no_fma() {
        let group = InstructionMix::AVX.emit_group(0, None);
        let m = sequence_meta(&insts(&group));
        assert_eq!(m.fp_fma, 1); // vmulpd runs on the FMA pipes
        assert_eq!(m.fp_add, 1);
        assert!(!group
            .iter()
            .any(|t| matches!(t.inst, Inst::Vfmadd231pd { .. })));
    }

    #[test]
    fn sqrt_mix_is_single_sqrt() {
        let group = InstructionMix::SQRT.emit_group(0, None);
        assert_eq!(group.len(), 1);
        assert!(matches!(group[0].inst, Inst::Sqrtsd { .. }));
    }

    #[test]
    fn registry_defaults_and_lookup() {
        assert_eq!(MixRegistry::default_for(Microarch::Zen2).name, "FMA");
        assert_eq!(MixRegistry::default_for(Microarch::Generic).name, "AVX");
        assert_eq!(
            MixRegistry::by_name(Microarch::Zen2, "fma").unwrap().kind,
            MixKind::FmaAvx2
        );
        assert!(MixRegistry::by_name(Microarch::Generic, "FMA").is_none());
        assert!(MixRegistry::by_name(Microarch::Zen2, "nope").is_none());
    }

    #[test]
    fn level_pointers_are_distinct() {
        let ptrs: std::collections::HashSet<Gp> =
            MemLevel::ALL.iter().map(|&l| level_pointer(l)).collect();
        assert_eq!(ptrs.len(), 4);
        // None of them collides with ALU/counter registers.
        for p in ptrs {
            assert!(![Gp::Rax, Gp::Rdx, Gp::Rdi, Gp::R9, Gp::R10].contains(&p));
        }
    }
}
