//! # fs2-core — FIRESTARTER 2
//!
//! The paper's primary contribution: runtime generation of
//! processor-specific stress workloads `ω = (I, u, M)` and an embedded
//! NSGA-II self-tuning loop over the memory accesses `M`.
//!
//! * [`groups`] — the access-group grammar of Eq. 1
//!   (`REG | {L1,L2,L3,RAM} × {L,S,LS,2LS,P} : count`), with the
//!   `--run-instruction-groups` string syntax.
//! * [`mod@distribute`] — the proportional interleaving of access groups into
//!   consecutive instruction sets ("distributed as good as possible"),
//!   then unrolled to `u` sets.
//! * [`mix`] — per-architecture instruction sets `I` (`--avail` /
//!   `--function`): the Haswell FMA mix used in the paper's Zen 2 case
//!   study, an AVX fallback, and the deliberately low-power `sqrtsd` loop.
//! * [`payload`] — the AsmJit-equivalent backend: turns `(I, u, M)` into
//!   a tagged simulator kernel *and* real x86-64 machine code.
//! * [`runner`] — workload execution on simulated time: EDC-aware
//!   frequency solve, power/IPC/trace recording, measurement windows with
//!   start/stop deltas, register dump and error detection (§III-D).
//! * [`engine`] — the reusable payload-to-power pipeline: a per-SKU
//!   [`Engine`] memoizes payload builds keyed by `(I, u, M)`, hands out
//!   measurement [`Session`]s, evaluates traceless sweeps, and fans
//!   work queues out over threads ([`Engine::sweep`]). The CLI, the
//!   fig/table experiments and the NSGA-II loop all route through it.
//! * [`registry`] — the cross-SKU layer above the engines: an
//!   [`EngineRegistry`] owns one [`Engine`] per SKU and shares group
//!   parsing and unroll derivation across them, feeding heterogeneous
//!   sweeps (the cluster fleet) from one set of caches.
//! * [`autotune`] — the §III-C optimization loop wiring NSGA-II to the
//!   runner and metrics, gap-free between candidates (Fig. 7).
//! * [`legacy`] — FIRESTARTER 1.x behaviour: fixed per-SKU workloads, the
//!   v1.7.4 ±∞ initialization bug, and the recompile-per-candidate tuning
//!   prototype whose idle gaps Fig. 6 shows.

pub mod autotune;
pub mod distribute;
pub mod engine;
pub mod groups;
pub mod legacy;
pub mod mix;
pub mod paracheck;
pub mod payload;
pub mod registry;
pub mod runner;

pub use autotune::{AutoTuner, TuneConfig, TuneResult};
pub use distribute::{distribute, unroll_sequence};
pub use engine::{CacheStats, Engine, EngineCaches, EvalBatch, EvalRequest, Session};
pub use groups::{parse_groups, AccessGroup, GroupParseError, Pattern, Target};
pub use mix::{InstructionMix, MixRegistry};
pub use paracheck::{check_all_cores, CheckReport, InjectedFault};
pub use payload::{default_unroll, Payload, PayloadConfig};
pub use registry::{EngineRegistry, GroupEvalRequest, RegistryStats};
pub use runner::{RunConfig, RunResult, Runner};

// Re-exported so registry-level consumers (the cluster fleet) can name
// the init scheme of batched evaluations without a direct fs2-sim
// dependency.
pub use fs2_sim::InitScheme;
