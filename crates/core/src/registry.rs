//! Cross-SKU engine registry.
//!
//! [`Engine`]s are per-SKU, and so are their payload caches. A sweep
//! over heterogeneous hardware — the cluster fleet, `--cpu` comparison
//! runs — therefore used to re-parse every group string and re-derive
//! every unroll factor once per SKU. An [`EngineRegistry`] owns one
//! engine per SKU and hoists the SKU-independent work into shared
//! caches:
//!
//! * **group parsing**: an access-group spec (`"REG:4,L1_L:2,L2_L:1"`)
//!   parses to the same `Vec<AccessGroup>` on every SKU, so the parse
//!   is memoized once registry-wide;
//! * **unroll derivation**: [`default_unroll`] depends on the SKU's
//!   L1I/µop-cache geometry and the mix, so it is memoized per
//!   `(SKU, spec)` — each engine still gets its own value, but repeat
//!   lookups (every fleet node of one SKU) are a map hit.
//!
//! The registry is `Sync` like the engines it owns: fleet sweep workers
//! on different threads share one registry, and [`RegistryStats`]
//! aggregates every layer's hit/miss counters for benchmark reports.

use crate::engine::Engine;
use crate::groups::{parse_groups, AccessGroup, GroupParseError};
use crate::mix::MixRegistry;
use crate::payload::{default_unroll, PayloadConfig};
use fs2_arch::Sku;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters aggregated across the registry and all of its engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Engines currently registered (distinct SKUs).
    pub engines: usize,
    /// Payload-cache hits summed over all engines.
    pub payload_hits: u64,
    /// Payload-cache misses summed over all engines.
    pub payload_misses: u64,
    /// Distinct payloads cached, summed over all engines.
    pub payload_entries: usize,
    /// Group-spec parses answered from the shared cache.
    pub spec_hits: u64,
    /// Group-spec parses that ran the parser.
    pub spec_misses: u64,
    /// Unroll derivations answered from the shared cache.
    pub unroll_hits: u64,
    /// Unroll derivations computed fresh.
    pub unroll_misses: u64,
    /// Kernel decodes served from memoized tables, summed over engines.
    pub decoded_hits: u64,
    /// Kernel decodes run fresh, summed over all engines.
    pub decoded_misses: u64,
    /// Functional passes served from the ExecStats caches.
    pub exec_hits: u64,
    /// Functional passes executed live (then cached).
    pub exec_misses: u64,
    /// `Engine::eval` operating-point solves summed over all engines.
    pub evals: u64,
}

/// One engine per SKU plus the shared spec/unroll caches.
pub struct EngineRegistry {
    /// Keyed by `Sku::name`; a linear scan over a handful of SKUs beats
    /// hashing the whole `Sku` struct.
    engines: Mutex<Vec<(&'static str, Arc<Engine>)>>,
    specs: Mutex<HashMap<String, Arc<Vec<AccessGroup>>>>,
    unrolls: Mutex<HashMap<(&'static str, String), u32>>,
    spec_hits: AtomicU64,
    spec_misses: AtomicU64,
    unroll_hits: AtomicU64,
    unroll_misses: AtomicU64,
    seed: u64,
}

impl EngineRegistry {
    /// Registry whose engines get the default session seed.
    pub fn new() -> EngineRegistry {
        EngineRegistry::with_seed(0xF12E_57A2)
    }

    /// Registry whose engines are created with `seed`.
    pub fn with_seed(seed: u64) -> EngineRegistry {
        EngineRegistry {
            engines: Mutex::new(Vec::new()),
            specs: Mutex::new(HashMap::new()),
            unrolls: Mutex::new(HashMap::new()),
            spec_hits: AtomicU64::new(0),
            spec_misses: AtomicU64::new(0),
            unroll_hits: AtomicU64::new(0),
            unroll_misses: AtomicU64::new(0),
            seed,
        }
    }

    /// The engine for `sku`, created on first request. Two SKUs are the
    /// same engine iff they share a `name` (the database treats the
    /// name as the node identity).
    pub fn engine(&self, sku: &Sku) -> Arc<Engine> {
        {
            let engines = self.engines.lock().expect("engine registry poisoned");
            if let Some((_, e)) = engines.iter().find(|(name, _)| *name == sku.name) {
                return Arc::clone(e);
            }
        }
        // Build outside the lock (simulator + power-model construction
        // is not free); like the other caches, a same-SKU race keeps
        // the first insert and drops the loser's engine.
        let engine = Arc::new(Engine::with_seed(sku.clone(), self.seed));
        let mut engines = self.engines.lock().expect("engine registry poisoned");
        if let Some((_, e)) = engines.iter().find(|(name, _)| *name == sku.name) {
            return Arc::clone(e);
        }
        engines.push((sku.name, Arc::clone(&engine)));
        engine
    }

    /// Parses an access-group spec through the shared cache. Specs are
    /// SKU-independent, so one parse serves every engine.
    pub fn groups(&self, spec: &str) -> Result<Arc<Vec<AccessGroup>>, GroupParseError> {
        if let Some(g) = self.specs.lock().expect("spec cache poisoned").get(spec) {
            self.spec_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(g));
        }
        // Parse outside the lock; like the payload cache, losers of a
        // same-spec race adopt the first insert.
        let parsed = Arc::new(parse_groups(spec)?);
        let mut specs = self.specs.lock().expect("spec cache poisoned");
        match specs.entry(spec.to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.spec_hits.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::clone(e.get()))
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.spec_misses.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::clone(v.insert(parsed)))
            }
        }
    }

    /// The architecture-default unroll for `spec` on `sku`, memoized per
    /// `(SKU, spec)`. Uses the SKU's default instruction mix (the same
    /// choice [`Engine::config_for_spec`] makes).
    pub fn unroll_for(&self, sku: &Sku, spec: &str) -> Result<u32, GroupParseError> {
        let groups = self.groups(spec)?;
        Ok(self.unroll_for_groups(sku, spec, &groups, MixRegistry::default_for(sku.uarch)))
    }

    /// Memoized unroll derivation for already-parsed groups — the
    /// single lookup path shared by [`EngineRegistry::unroll_for`] and
    /// [`EngineRegistry::config_for`], so neither re-fetches the spec
    /// (which would skew the spec hit counter with internal requests).
    fn unroll_for_groups(
        &self,
        sku: &Sku,
        spec: &str,
        groups: &[AccessGroup],
        mix: crate::mix::InstructionMix,
    ) -> u32 {
        let key = (sku.name, spec.to_string());
        if let Some(&u) = self
            .unrolls
            .lock()
            .expect("unroll cache poisoned")
            .get(&key)
        {
            self.unroll_hits.fetch_add(1, Ordering::Relaxed);
            return u;
        }
        let u = default_unroll(sku, mix, groups);
        let mut unrolls = self.unrolls.lock().expect("unroll cache poisoned");
        match unrolls.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.unroll_hits.fetch_add(1, Ordering::Relaxed);
                *e.get()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.unroll_misses.fetch_add(1, Ordering::Relaxed);
                *v.insert(u)
            }
        }
    }

    /// Payload config for `spec` on `sku` (default mix, cached groups,
    /// cached unroll) — the registry-shared equivalent of
    /// [`Engine::config_for_spec`]. One spec lookup per call.
    pub fn config_for(&self, sku: &Sku, spec: &str) -> Result<PayloadConfig, GroupParseError> {
        let groups = self.groups(spec)?;
        let mix = MixRegistry::default_for(sku.uarch);
        let unroll = self.unroll_for_groups(sku, spec, &groups, mix);
        Ok(PayloadConfig {
            mix,
            groups: groups.as_ref().clone(),
            unroll,
        })
    }

    /// Cached payload for `spec` on `sku`'s engine.
    pub fn payload_for(
        &self,
        sku: &Sku,
        spec: &str,
    ) -> Result<Arc<crate::payload::Payload>, GroupParseError> {
        let config = self.config_for(sku, spec)?;
        Ok(self.engine(sku).payload(&config))
    }

    /// Aggregated counters across the registry and all engines.
    pub fn stats(&self) -> RegistryStats {
        let engines = self.engines.lock().expect("engine registry poisoned");
        let mut s = RegistryStats {
            engines: engines.len(),
            spec_hits: self.spec_hits.load(Ordering::Relaxed),
            spec_misses: self.spec_misses.load(Ordering::Relaxed),
            unroll_hits: self.unroll_hits.load(Ordering::Relaxed),
            unroll_misses: self.unroll_misses.load(Ordering::Relaxed),
            ..RegistryStats::default()
        };
        for (_, e) in engines.iter() {
            let c = e.cache_stats();
            s.payload_hits += c.hits;
            s.payload_misses += c.misses;
            s.payload_entries += c.entries;
            s.decoded_hits += c.decoded_hits;
            s.decoded_misses += c.decoded_misses;
            s.exec_hits += c.exec_hits;
            s.exec_misses += c.exec_misses;
            s.evals += e.eval_count();
        }
        s
    }
}

impl Default for EngineRegistry {
    fn default() -> EngineRegistry {
        EngineRegistry::new()
    }
}

impl std::fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineRegistry")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_engine_per_sku_name() {
        let reg = EngineRegistry::new();
        let a = reg.engine(&Sku::amd_epyc_7502());
        let b = reg.engine(&Sku::amd_epyc_7502());
        let c = reg.engine(&Sku::intel_xeon_e5_2680_v3());
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(reg.stats().engines, 2);
    }

    #[test]
    fn spec_parse_is_shared_across_skus() {
        let reg = EngineRegistry::new();
        let spec = "REG:4,L1_L:2,L2_L:1";
        let rome = reg.config_for(&Sku::amd_epyc_7502(), spec).unwrap();
        let haswell = reg.config_for(&Sku::intel_xeon_e5_2680_v3(), spec).unwrap();
        // Groups identical, parsed once; unroll derived per SKU.
        assert_eq!(rome.groups, haswell.groups);
        let s = reg.stats();
        assert_eq!(s.spec_misses, 1, "one parse serves both SKUs");
        assert!(s.spec_hits >= 1);
        assert_eq!(s.unroll_misses, 2, "unroll is per-SKU");
    }

    #[test]
    fn unroll_matches_engine_derivation() {
        let reg = EngineRegistry::new();
        let sku = Sku::intel_xeon_e5_2680_v3();
        let spec = "REG:2,L1_LS:1,RAM_P:1";
        let via_registry = reg.config_for(&sku, spec).unwrap();
        let via_engine = Engine::new(sku.clone()).config_for_spec(spec).unwrap();
        assert_eq!(via_registry.unroll, via_engine.unroll);
        assert_eq!(via_registry.groups, via_engine.groups);
        assert_eq!(via_registry.mix.kind, via_engine.mix.kind);
        // Second lookup is a pure cache hit.
        let before = reg.stats();
        let _ = reg.config_for(&sku, spec).unwrap();
        let after = reg.stats();
        assert_eq!(after.spec_misses, before.spec_misses);
        assert_eq!(after.unroll_misses, before.unroll_misses);
        assert!(after.unroll_hits > before.unroll_hits);
    }

    #[test]
    fn payload_for_lands_in_the_right_engine_cache() {
        let reg = EngineRegistry::new();
        let sku = Sku::amd_epyc_7502();
        let p1 = reg.payload_for(&sku, "REG:1").unwrap();
        let p2 = reg.payload_for(&sku, "REG:1").unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        let s = reg.stats();
        assert_eq!(s.payload_misses, 1);
        assert_eq!(s.payload_hits, 1);
        assert_eq!(s.payload_entries, 1);
    }

    #[test]
    fn bad_spec_is_not_cached() {
        let reg = EngineRegistry::new();
        assert!(reg.groups("L9_X:1").is_err());
        assert!(reg.groups("L9_X:1").is_err());
        let s = reg.stats();
        assert_eq!(s.spec_hits + s.spec_misses, 0, "errors must not count");
    }
}
