//! Cross-SKU engine registry.
//!
//! [`Engine`]s are per-SKU, and so are their payload caches. A sweep
//! over heterogeneous hardware — the cluster fleet, `--cpu` comparison
//! runs — therefore used to re-parse every group string and re-derive
//! every unroll factor once per SKU. An [`EngineRegistry`] owns one
//! engine per SKU and hoists the SKU-independent work into shared
//! caches:
//!
//! * **group parsing**: an access-group spec (`"REG:4,L1_L:2,L2_L:1"`)
//!   parses to the same `Vec<AccessGroup>` on every SKU, so the parse
//!   is memoized once registry-wide;
//! * **unroll derivation**: [`default_unroll`] depends on the SKU's
//!   L1I/µop-cache geometry and the mix, so it is memoized per
//!   `(SKU, spec)` — each engine still gets its own value, but repeat
//!   lookups (every fleet node of one SKU) are a map hit.
//!
//! The registry is `Sync` like the engines it owns: fleet sweep workers
//! on different threads share one registry, and [`RegistryStats`]
//! aggregates every layer's hit/miss counters for benchmark reports.

use crate::engine::{Engine, EngineCaches, EvalBatch, EvalRequest};
use crate::groups::{parse_groups, AccessGroup, GroupParseError};
use crate::mix::MixRegistry;
use crate::payload::{default_unroll, PayloadConfig};
use fs2_arch::Sku;
use fs2_sim::InitScheme;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters aggregated across the registry and all of its engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Engines currently registered (distinct SKUs).
    pub engines: usize,
    /// Payload-cache hits summed over all engines.
    pub payload_hits: u64,
    /// Payload-cache misses summed over all engines.
    pub payload_misses: u64,
    /// Distinct payloads cached, summed over all engines.
    pub payload_entries: usize,
    /// Group-spec parses answered from the shared cache.
    pub spec_hits: u64,
    /// Group-spec parses that ran the parser.
    pub spec_misses: u64,
    /// Unroll derivations answered from the shared cache.
    pub unroll_hits: u64,
    /// Unroll derivations computed fresh.
    pub unroll_misses: u64,
    /// Kernel decodes served from memoized tables, summed over engines.
    pub decoded_hits: u64,
    /// Kernel decodes run fresh, summed over all engines.
    pub decoded_misses: u64,
    /// Functional passes served from the ExecStats caches.
    pub exec_hits: u64,
    /// Functional passes executed live (then cached).
    pub exec_misses: u64,
    /// `Engine::eval` operating-point solves summed over all engines.
    pub evals: u64,
    /// Tuning candidates scored by the traceless pre-screen.
    pub prescreen_evals: u64,
    /// Pre-screened candidates pruned before full measurement.
    pub prescreen_pruned: u64,
    /// Fleet requests announced via [`EngineRegistry::begin_request`].
    pub requests: u64,
    /// Payload-cache hits landed after the first request finished — the
    /// service-tier "warm registry" signal (0 until a second request
    /// starts).
    pub cross_payload_hits: u64,
    /// Payload-cache lookups (hits + misses) after the first request.
    pub cross_payload_lookups: u64,
    /// ExecStats-cache hits after the first request.
    pub cross_exec_hits: u64,
    /// ExecStats-cache lookups after the first request.
    pub cross_exec_lookups: u64,
    /// Decoded-kernel hits after the first request.
    pub cross_decoded_hits: u64,
    /// Decoded-kernel lookups after the first request.
    pub cross_decoded_lookups: u64,
}

impl RegistryStats {
    /// Fraction of pre-screened tuning candidates pruned before full
    /// measurement (0.0 when the pre-screen never ran).
    pub fn prescreen_prune_rate(&self) -> f64 {
        if self.prescreen_evals == 0 {
            0.0
        } else {
            self.prescreen_pruned as f64 / self.prescreen_evals as f64
        }
    }

    /// Payload-cache hit rate over lookups made after the first request
    /// completed its warm-up (0.0 before a second request exists).
    pub fn cross_request_payload_hit_rate(&self) -> f64 {
        rate(self.cross_payload_hits, self.cross_payload_lookups)
    }

    /// ExecStats-cache hit rate over post-first-request lookups.
    pub fn cross_request_exec_hit_rate(&self) -> f64 {
        rate(self.cross_exec_hits, self.cross_exec_lookups)
    }

    /// Decoded-kernel hit rate over post-first-request lookups.
    pub fn cross_request_decoded_hit_rate(&self) -> f64 {
        rate(self.cross_decoded_hits, self.cross_decoded_lookups)
    }
}

fn rate(hits: u64, lookups: u64) -> f64 {
    if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    }
}

/// Cache-counter snapshot taken when the second request begins, so the
/// cross-request deltas in [`RegistryStats`] measure only traffic that
/// could plausibly hit another request's warm entries.
#[derive(Debug, Clone, Copy, Default)]
struct CrossBase {
    payload_hits: u64,
    payload_misses: u64,
    decoded_hits: u64,
    decoded_misses: u64,
    exec_hits: u64,
    exec_misses: u64,
}

/// One registry-level batched evaluation request: a SKU + group spec
/// plus every frequency to solve (see [`EngineRegistry::eval_groups`]).
#[derive(Debug, Clone)]
pub struct GroupEvalRequest<'a> {
    pub sku: &'a Sku,
    pub spec: &'a str,
    /// Init scheme of the cached functional pass supplying the trivial
    /// fraction ([`InitScheme::V2Safe`] matches [`Engine::eval`]).
    pub init: InitScheme,
    pub freqs_mhz: Vec<f64>,
}

/// One engine per SKU plus the shared spec/unroll caches and the
/// registry-wide [`EngineCaches`] tier every engine warms.
pub struct EngineRegistry {
    /// Keyed by `Sku::name`; a linear scan over a handful of SKUs beats
    /// hashing the whole `Sku` struct.
    engines: Mutex<Vec<(&'static str, Arc<Engine>)>>,
    /// The shared payload/decode/ExecStats tier (SKU-tagged keys), so
    /// repeat fleet requests hit one registry-wide cache instead of
    /// each warming a per-engine one.
    caches: Arc<EngineCaches>,
    specs: Mutex<HashMap<String, Arc<Vec<AccessGroup>>>>,
    unrolls: Mutex<HashMap<(&'static str, String), u32>>,
    spec_hits: AtomicU64,
    spec_misses: AtomicU64,
    unroll_hits: AtomicU64,
    unroll_misses: AtomicU64,
    requests: AtomicU64,
    cross_base: Mutex<Option<CrossBase>>,
    seed: u64,
}

impl EngineRegistry {
    /// Registry whose engines get the default session seed.
    pub fn new() -> EngineRegistry {
        EngineRegistry::with_seed(0xF12E_57A2)
    }

    /// Registry whose engines are created with `seed`.
    pub fn with_seed(seed: u64) -> EngineRegistry {
        EngineRegistry::with_caches(seed, Arc::new(EngineCaches::new()))
    }

    /// Registry whose engines are created with `seed` and warm a
    /// caller-provided cache tier. The fleet service uses this to share
    /// one payload/decode/ExecStats tier across the per-seed registries
    /// it keeps (cache keys are SKU-tagged and, where results depend on
    /// the engine seed, seed-tagged, so sharing is sound).
    pub fn with_caches(seed: u64, caches: Arc<EngineCaches>) -> EngineRegistry {
        EngineRegistry {
            engines: Mutex::new(Vec::new()),
            caches,
            specs: Mutex::new(HashMap::new()),
            unrolls: Mutex::new(HashMap::new()),
            spec_hits: AtomicU64::new(0),
            spec_misses: AtomicU64::new(0),
            unroll_hits: AtomicU64::new(0),
            unroll_misses: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            cross_base: Mutex::new(None),
            seed,
        }
    }

    /// Announces the start of a fleet request against this registry.
    /// When the second request arrives, the current cache counters are
    /// snapshotted so [`RegistryStats`] can report how much later
    /// traffic was served by entries an earlier request warmed.
    pub fn begin_request(&self) {
        let n = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        if n == 2 {
            let c = self.caches.stats();
            let mut base = self.cross_base.lock().expect("cross base poisoned");
            if base.is_none() {
                *base = Some(CrossBase {
                    payload_hits: c.hits,
                    payload_misses: c.misses,
                    decoded_hits: c.decoded_hits,
                    decoded_misses: c.decoded_misses,
                    exec_hits: c.exec_hits,
                    exec_misses: c.exec_misses,
                });
            }
        }
    }

    /// The registry-wide shared cache tier.
    pub fn caches(&self) -> &Arc<EngineCaches> {
        &self.caches
    }

    /// The engine for `sku`, created on first request. Two SKUs are the
    /// same engine iff they share a `name` (the database treats the
    /// name as the node identity).
    pub fn engine(&self, sku: &Sku) -> Arc<Engine> {
        {
            let engines = self.engines.lock().expect("engine registry poisoned");
            if let Some((_, e)) = engines.iter().find(|(name, _)| *name == sku.name) {
                return Arc::clone(e);
            }
        }
        // Build outside the lock (simulator + power-model construction
        // is not free); like the other caches, a same-SKU race keeps
        // the first insert and drops the loser's engine.
        let engine = Arc::new(Engine::with_caches(
            sku.clone(),
            self.seed,
            Arc::clone(&self.caches),
        ));
        let mut engines = self.engines.lock().expect("engine registry poisoned");
        if let Some((_, e)) = engines.iter().find(|(name, _)| *name == sku.name) {
            return Arc::clone(e);
        }
        engines.push((sku.name, Arc::clone(&engine)));
        engine
    }

    /// Parses an access-group spec through the shared cache. Specs are
    /// SKU-independent, so one parse serves every engine.
    pub fn groups(&self, spec: &str) -> Result<Arc<Vec<AccessGroup>>, GroupParseError> {
        if let Some(g) = self.specs.lock().expect("spec cache poisoned").get(spec) {
            self.spec_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(g));
        }
        // Parse outside the lock; like the payload cache, losers of a
        // same-spec race adopt the first insert.
        let parsed = Arc::new(parse_groups(spec)?);
        let mut specs = self.specs.lock().expect("spec cache poisoned");
        match specs.entry(spec.to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.spec_hits.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::clone(e.get()))
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.spec_misses.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::clone(v.insert(parsed)))
            }
        }
    }

    /// The architecture-default unroll for `spec` on `sku`, memoized per
    /// `(SKU, spec)`. Uses the SKU's default instruction mix (the same
    /// choice [`Engine::config_for_spec`] makes).
    pub fn unroll_for(&self, sku: &Sku, spec: &str) -> Result<u32, GroupParseError> {
        let groups = self.groups(spec)?;
        Ok(self.unroll_for_groups(sku, spec, &groups, MixRegistry::default_for(sku.uarch)))
    }

    /// Memoized unroll derivation for already-parsed groups — the
    /// single lookup path shared by [`EngineRegistry::unroll_for`] and
    /// [`EngineRegistry::config_for`], so neither re-fetches the spec
    /// (which would skew the spec hit counter with internal requests).
    fn unroll_for_groups(
        &self,
        sku: &Sku,
        spec: &str,
        groups: &[AccessGroup],
        mix: crate::mix::InstructionMix,
    ) -> u32 {
        let key = (sku.name, spec.to_string());
        if let Some(&u) = self
            .unrolls
            .lock()
            .expect("unroll cache poisoned")
            .get(&key)
        {
            self.unroll_hits.fetch_add(1, Ordering::Relaxed);
            return u;
        }
        let u = default_unroll(sku, mix, groups);
        let mut unrolls = self.unrolls.lock().expect("unroll cache poisoned");
        match unrolls.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.unroll_hits.fetch_add(1, Ordering::Relaxed);
                *e.get()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.unroll_misses.fetch_add(1, Ordering::Relaxed);
                *v.insert(u)
            }
        }
    }

    /// Payload config for `spec` on `sku` (default mix, cached groups,
    /// cached unroll) — the registry-shared equivalent of
    /// [`Engine::config_for_spec`]. One spec lookup per call.
    pub fn config_for(&self, sku: &Sku, spec: &str) -> Result<PayloadConfig, GroupParseError> {
        let groups = self.groups(spec)?;
        let mix = MixRegistry::default_for(sku.uarch);
        let unroll = self.unroll_for_groups(sku, spec, &groups, mix);
        Ok(PayloadConfig {
            mix,
            groups: groups.as_ref().clone(),
            unroll,
        })
    }

    /// Cached payload for `spec` on `sku`'s engine.
    pub fn payload_for(
        &self,
        sku: &Sku,
        spec: &str,
    ) -> Result<Arc<crate::payload::Payload>, GroupParseError> {
        let config = self.config_for(sku, spec)?;
        Ok(self.engine(sku).payload(&config))
    }

    /// Batched traceless evaluation across SKUs: requests are bucketed
    /// per SKU engine and dispatched through [`Engine::eval_batch`], so
    /// one cached payload fetch, decode and functional pass serve every
    /// frequency a `(SKU, spec)` pair asks for. Results come back in
    /// request order, bit-identical to per-call [`Engine::eval_init`]
    /// solves.
    pub fn eval_groups(
        &self,
        requests: &[GroupEvalRequest<'_>],
    ) -> Result<Vec<EvalBatch>, GroupParseError> {
        let mut buckets: Vec<(Arc<Engine>, Vec<usize>, Vec<EvalRequest>)> = Vec::new();
        for (i, r) in requests.iter().enumerate() {
            let req = EvalRequest {
                config: self.config_for(r.sku, r.spec)?,
                init: r.init,
                freqs_mhz: r.freqs_mhz.clone(),
            };
            match buckets
                .iter_mut()
                .find(|(e, _, _)| e.sku().name == r.sku.name)
            {
                Some((_, order, reqs)) => {
                    order.push(i);
                    reqs.push(req);
                }
                None => buckets.push((self.engine(r.sku), vec![i], vec![req])),
            }
        }
        let mut out: Vec<Option<EvalBatch>> = requests.iter().map(|_| None).collect();
        for (engine, order, reqs) in buckets {
            for (i, batch) in order.into_iter().zip(engine.eval_batch(&reqs)) {
                out[i] = Some(batch);
            }
        }
        Ok(out
            .into_iter()
            .map(|b| b.expect("every request is dispatched to exactly one bucket"))
            .collect())
    }

    /// Aggregated counters across the registry and all engines. The
    /// payload/decode/ExecStats tier is shared, so it is read once —
    /// summing per-engine snapshots would count it once per engine.
    pub fn stats(&self) -> RegistryStats {
        let engines = self.engines.lock().expect("engine registry poisoned");
        let c = self.caches.stats();
        let base = self
            .cross_base
            .lock()
            .expect("cross base poisoned")
            .unwrap_or(CrossBase {
                // No second request yet: the cross window is empty, so
                // baseline at the current counters and every delta is 0.
                payload_hits: c.hits,
                payload_misses: c.misses,
                decoded_hits: c.decoded_hits,
                decoded_misses: c.decoded_misses,
                exec_hits: c.exec_hits,
                exec_misses: c.exec_misses,
            });
        let lookups = |h: u64, m: u64, bh: u64, bm: u64| (h + m).saturating_sub(bh + bm);
        let mut s = RegistryStats {
            engines: engines.len(),
            spec_hits: self.spec_hits.load(Ordering::Relaxed),
            spec_misses: self.spec_misses.load(Ordering::Relaxed),
            unroll_hits: self.unroll_hits.load(Ordering::Relaxed),
            unroll_misses: self.unroll_misses.load(Ordering::Relaxed),
            payload_hits: c.hits,
            payload_misses: c.misses,
            payload_entries: c.entries,
            decoded_hits: c.decoded_hits,
            decoded_misses: c.decoded_misses,
            exec_hits: c.exec_hits,
            exec_misses: c.exec_misses,
            prescreen_evals: c.prescreen_evals,
            prescreen_pruned: c.prescreen_pruned,
            requests: self.requests.load(Ordering::Relaxed),
            cross_payload_hits: c.hits.saturating_sub(base.payload_hits),
            cross_payload_lookups: lookups(
                c.hits,
                c.misses,
                base.payload_hits,
                base.payload_misses,
            ),
            cross_exec_hits: c.exec_hits.saturating_sub(base.exec_hits),
            cross_exec_lookups: lookups(
                c.exec_hits,
                c.exec_misses,
                base.exec_hits,
                base.exec_misses,
            ),
            cross_decoded_hits: c.decoded_hits.saturating_sub(base.decoded_hits),
            cross_decoded_lookups: lookups(
                c.decoded_hits,
                c.decoded_misses,
                base.decoded_hits,
                base.decoded_misses,
            ),
            ..RegistryStats::default()
        };
        for (_, e) in engines.iter() {
            s.evals += e.eval_count();
        }
        s
    }
}

impl Default for EngineRegistry {
    fn default() -> EngineRegistry {
        EngineRegistry::new()
    }
}

impl std::fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineRegistry")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_engine_per_sku_name() {
        let reg = EngineRegistry::new();
        let a = reg.engine(&Sku::amd_epyc_7502());
        let b = reg.engine(&Sku::amd_epyc_7502());
        let c = reg.engine(&Sku::intel_xeon_e5_2680_v3());
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(reg.stats().engines, 2);
    }

    #[test]
    fn spec_parse_is_shared_across_skus() {
        let reg = EngineRegistry::new();
        let spec = "REG:4,L1_L:2,L2_L:1";
        let rome = reg.config_for(&Sku::amd_epyc_7502(), spec).unwrap();
        let haswell = reg.config_for(&Sku::intel_xeon_e5_2680_v3(), spec).unwrap();
        // Groups identical, parsed once; unroll derived per SKU.
        assert_eq!(rome.groups, haswell.groups);
        let s = reg.stats();
        assert_eq!(s.spec_misses, 1, "one parse serves both SKUs");
        assert!(s.spec_hits >= 1);
        assert_eq!(s.unroll_misses, 2, "unroll is per-SKU");
    }

    #[test]
    fn unroll_matches_engine_derivation() {
        let reg = EngineRegistry::new();
        let sku = Sku::intel_xeon_e5_2680_v3();
        let spec = "REG:2,L1_LS:1,RAM_P:1";
        let via_registry = reg.config_for(&sku, spec).unwrap();
        let via_engine = Engine::new(sku.clone()).config_for_spec(spec).unwrap();
        assert_eq!(via_registry.unroll, via_engine.unroll);
        assert_eq!(via_registry.groups, via_engine.groups);
        assert_eq!(via_registry.mix.kind, via_engine.mix.kind);
        // Second lookup is a pure cache hit.
        let before = reg.stats();
        let _ = reg.config_for(&sku, spec).unwrap();
        let after = reg.stats();
        assert_eq!(after.spec_misses, before.spec_misses);
        assert_eq!(after.unroll_misses, before.unroll_misses);
        assert!(after.unroll_hits > before.unroll_hits);
    }

    #[test]
    fn payload_for_lands_in_the_right_engine_cache() {
        let reg = EngineRegistry::new();
        let sku = Sku::amd_epyc_7502();
        let p1 = reg.payload_for(&sku, "REG:1").unwrap();
        let p2 = reg.payload_for(&sku, "REG:1").unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        let s = reg.stats();
        assert_eq!(s.payload_misses, 1);
        assert_eq!(s.payload_hits, 1);
        assert_eq!(s.payload_entries, 1);
    }

    #[test]
    fn cache_tier_is_shared_across_sku_engines() {
        let reg = EngineRegistry::new();
        let rome = reg.engine(&Sku::amd_epyc_7502());
        let haswell = reg.engine(&Sku::intel_xeon_e5_2680_v3());
        assert!(
            Arc::ptr_eq(rome.caches(), haswell.caches()),
            "registry engines must share one cache tier"
        );
        assert!(Arc::ptr_eq(rome.caches(), reg.caches()));

        // Same spec on two SKUs: keys are SKU-tagged, so each SKU gets
        // its own entry — sharing must not alias payloads across SKUs.
        let p_rome = reg.payload_for(&Sku::amd_epyc_7502(), "REG:1").unwrap();
        let p_haswell = reg
            .payload_for(&Sku::intel_xeon_e5_2680_v3(), "REG:1")
            .unwrap();
        assert!(
            !Arc::ptr_eq(&p_rome, &p_haswell),
            "SKUs must get distinct cache entries even when codegen coincides"
        );
        let s = reg.stats();
        assert_eq!(s.payload_misses, 2);
        assert_eq!(s.payload_entries, 2);
        // stats() reads the shared tier once — two engines must not
        // double the counters.
        assert_eq!(s.payload_hits, 0);
    }

    #[test]
    fn eval_groups_matches_per_engine_eval_bitwise() {
        use fs2_sim::InitScheme;
        let reg = EngineRegistry::new();
        let rome = Sku::amd_epyc_7502();
        let haswell = Sku::intel_xeon_e5_2680_v3();
        // Interleave SKUs to exercise the bucketing order mapping.
        let requests = vec![
            GroupEvalRequest {
                sku: &rome,
                spec: "REG:1",
                init: InitScheme::V2Safe,
                freqs_mhz: vec![1500.0, 2200.0],
            },
            GroupEvalRequest {
                sku: &haswell,
                spec: "REG:4,L1_L:2",
                init: InitScheme::V2Safe,
                freqs_mhz: vec![1200.0],
            },
            GroupEvalRequest {
                sku: &rome,
                spec: "REG:4,L1_L:2",
                init: InitScheme::V2Safe,
                freqs_mhz: vec![2500.0],
            },
        ];
        let batches = reg.eval_groups(&requests).unwrap();
        assert_eq!(batches.len(), requests.len());

        let fresh = EngineRegistry::new();
        for (req, batch) in requests.iter().zip(&batches) {
            let engine = fresh.engine(req.sku);
            let config = fresh.config_for(req.sku, req.spec).unwrap();
            assert_eq!(batch.points.len(), req.freqs_mhz.len());
            for (&f, point) in req.freqs_mhz.iter().zip(&batch.points) {
                let single = engine.eval(&config, f);
                assert_eq!(point.power, single.power);
                assert_eq!(point.applied_mhz.to_bits(), single.applied_mhz.to_bits());
            }
        }
        assert_eq!(reg.stats().evals, 4, "one solve per (request, freq)");
    }

    #[test]
    fn cross_request_counters_open_on_the_second_request() {
        let reg = EngineRegistry::new();
        let sku = Sku::amd_epyc_7502();

        // Request 1 warms the payload cache.
        reg.begin_request();
        let _ = reg.payload_for(&sku, "REG:1").unwrap();
        let s1 = reg.stats();
        assert_eq!(s1.requests, 1);
        assert_eq!(s1.cross_payload_lookups, 0, "window opens at request 2");
        assert_eq!(s1.cross_request_payload_hit_rate(), 0.0);

        // Request 2 replays the same spec: every lookup after the
        // baseline is a hit on request 1's entry.
        reg.begin_request();
        let _ = reg.payload_for(&sku, "REG:1").unwrap();
        let s2 = reg.stats();
        assert_eq!(s2.requests, 2);
        assert_eq!(s2.cross_payload_hits, 1);
        assert_eq!(s2.cross_payload_lookups, 1);
        assert_eq!(s2.cross_request_payload_hit_rate(), 1.0);

        // A third request with a cold spec dilutes but keeps the window.
        reg.begin_request();
        let _ = reg.payload_for(&sku, "REG:2").unwrap();
        let s3 = reg.stats();
        assert_eq!(s3.requests, 3);
        assert_eq!(s3.cross_payload_hits, 1);
        assert_eq!(s3.cross_payload_lookups, 2);
        assert_eq!(s3.cross_request_payload_hit_rate(), 0.5);
    }

    #[test]
    fn shared_caches_constructor_shares_the_tier_across_registries() {
        let caches = Arc::new(EngineCaches::new());
        let a = EngineRegistry::with_caches(7, Arc::clone(&caches));
        let b = EngineRegistry::with_caches(7, Arc::clone(&caches));
        let sku = Sku::amd_epyc_7502();
        let _ = a.payload_for(&sku, "REG:1").unwrap();
        // Registry `b` never built anything, yet its first lookup hits.
        let _ = b.payload_for(&sku, "REG:1").unwrap();
        let s = b.stats();
        assert_eq!(s.payload_misses, 1);
        assert_eq!(s.payload_hits, 1);
    }

    #[test]
    fn bad_spec_is_not_cached() {
        let reg = EngineRegistry::new();
        assert!(reg.groups("L9_X:1").is_err());
        assert!(reg.groups("L9_X:1").is_err());
        let s = reg.stats();
        assert_eq!(s.spec_hits + s.spec_misses, 0, "errors must not count");
    }
}
