//! The access-group grammar (Eq. 1) and its string syntax.
//!
//! A workload's memory accesses `M` are a set of `(target, pattern,
//! count)` triples written `REG:4,L1_L:2,L2_L:1` — the
//! `--run-instruction-groups` argument. Register-only groups have no
//! pattern; memory groups combine a hierarchy level with an access
//! pattern (`L`oad, `S`tore, `L`oad+`S`tore, `2` Loads+Store,
//! `P`refetch). "Not all patterns are defined for all levels."

use fs2_arch::MemLevel;
use std::fmt;

/// What a group's operands touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Registers only.
    Reg,
    /// A memory-hierarchy level.
    Mem(MemLevel),
}

/// Access pattern for non-register targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// `L` — load.
    Load,
    /// `S` — store.
    Store,
    /// `LS` — load + store.
    LoadStore,
    /// `2LS` — two loads + store.
    TwoLoadsStore,
    /// `P` — software prefetch.
    Prefetch,
}

impl Pattern {
    pub const fn token(self) -> &'static str {
        match self {
            Pattern::Load => "L",
            Pattern::Store => "S",
            Pattern::LoadStore => "LS",
            Pattern::TwoLoadsStore => "2LS",
            Pattern::Prefetch => "P",
        }
    }

    fn from_token(s: &str) -> Option<Pattern> {
        match s {
            "L" => Some(Pattern::Load),
            "S" => Some(Pattern::Store),
            "LS" => Some(Pattern::LoadStore),
            "2LS" => Some(Pattern::TwoLoadsStore),
            "P" => Some(Pattern::Prefetch),
            _ => None,
        }
    }

    /// Whether this pattern is defined for `level` ("not all patterns are
    /// defined for all levels"): `2LS` only makes sense where two loads
    /// per cycle can actually be served (L1); prefetching into L1 is not
    /// offered (it would just be a load).
    pub fn valid_for(self, level: MemLevel) -> bool {
        match self {
            Pattern::TwoLoadsStore => level == MemLevel::L1,
            Pattern::Prefetch => level != MemLevel::L1,
            Pattern::Load | Pattern::Store | Pattern::LoadStore => true,
        }
    }
}

/// One entry of `M`: a target/pattern with its occurrence count `a`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessGroup {
    pub target: Target,
    /// `None` exactly when `target` is [`Target::Reg`].
    pub pattern: Option<Pattern>,
    /// Occurrences within the distribution window (`a ∈ ℕ⁺`).
    pub count: u32,
}

impl AccessGroup {
    /// Register-only group.
    pub fn reg(count: u32) -> AccessGroup {
        AccessGroup {
            target: Target::Reg,
            pattern: None,
            count,
        }
    }

    /// Memory group; panics on invalid level/pattern combinations.
    pub fn mem(level: MemLevel, pattern: Pattern, count: u32) -> AccessGroup {
        assert!(
            pattern.valid_for(level),
            "pattern {} not defined for level {}",
            pattern.token(),
            level
        );
        AccessGroup {
            target: Target::Mem(level),
            pattern: Some(pattern),
            count,
        }
    }

    /// The grammar token without the count (e.g. `L1_LS`).
    pub fn token(&self) -> String {
        match (self.target, self.pattern) {
            (Target::Reg, _) => "REG".to_string(),
            (Target::Mem(level), Some(p)) => format!("{}_{}", level.name(), p.token()),
            (Target::Mem(_), None) => unreachable!("memory group without pattern"),
        }
    }
}

impl fmt::Display for AccessGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.token(), self.count)
    }
}

/// Errors from [`parse_groups`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupParseError {
    Empty,
    /// A term was not of the form `ITEM:COUNT`.
    BadTerm(String),
    UnknownLevel(String),
    UnknownPattern(String),
    /// Pattern exists but is not defined for the level.
    InvalidCombination(String),
    BadCount(String),
    /// REG groups take no pattern suffix.
    RegWithPattern(String),
    /// The same item appeared twice.
    Duplicate(String),
}

impl fmt::Display for GroupParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupParseError::Empty => f.write_str("empty instruction-group list"),
            GroupParseError::BadTerm(t) => write!(f, "malformed term `{t}` (expected ITEM:COUNT)"),
            GroupParseError::UnknownLevel(t) => write!(f, "unknown memory level in `{t}`"),
            GroupParseError::UnknownPattern(t) => write!(f, "unknown access pattern in `{t}`"),
            GroupParseError::InvalidCombination(t) => {
                write!(f, "pattern not defined for this level in `{t}`")
            }
            GroupParseError::BadCount(t) => write!(f, "invalid count in `{t}`"),
            GroupParseError::RegWithPattern(t) => write!(f, "REG takes no pattern in `{t}`"),
            GroupParseError::Duplicate(t) => write!(f, "duplicate item `{t}`"),
        }
    }
}

impl std::error::Error for GroupParseError {}

/// Parses a `--run-instruction-groups` string, e.g.
/// `REG:4,L1_L:2,L2_L:1`.
pub fn parse_groups(s: &str) -> Result<Vec<AccessGroup>, GroupParseError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(GroupParseError::Empty);
    }
    let mut out: Vec<AccessGroup> = Vec::new();
    for raw in s.split(',') {
        let term = raw.trim();
        let (item, count_str) = term
            .split_once(':')
            .ok_or_else(|| GroupParseError::BadTerm(term.to_string()))?;
        let count: u32 = count_str
            .trim()
            .parse()
            .map_err(|_| GroupParseError::BadCount(term.to_string()))?;
        if count == 0 {
            return Err(GroupParseError::BadCount(term.to_string()));
        }
        let item = item.trim();
        let group = if item == "REG" {
            AccessGroup::reg(count)
        } else if let Some(rest) = item.strip_prefix("REG_") {
            let _ = rest;
            return Err(GroupParseError::RegWithPattern(term.to_string()));
        } else {
            let (level_str, pattern_str) = item
                .split_once('_')
                .ok_or_else(|| GroupParseError::UnknownLevel(term.to_string()))?;
            let level = match level_str {
                "L1" => MemLevel::L1,
                "L2" => MemLevel::L2,
                "L3" => MemLevel::L3,
                "RAM" => MemLevel::Ram,
                _ => return Err(GroupParseError::UnknownLevel(term.to_string())),
            };
            let pattern = Pattern::from_token(pattern_str)
                .ok_or_else(|| GroupParseError::UnknownPattern(term.to_string()))?;
            if !pattern.valid_for(level) {
                return Err(GroupParseError::InvalidCombination(term.to_string()));
            }
            AccessGroup {
                target: Target::Mem(level),
                pattern: Some(pattern),
                count,
            }
        };
        if out.iter().any(|g| g.token() == group.token()) {
            return Err(GroupParseError::Duplicate(group.token()));
        }
        out.push(group);
    }
    Ok(out)
}

/// Renders groups back to the canonical string form.
pub fn format_groups(groups: &[AccessGroup]) -> String {
    groups
        .iter()
        .map(|g| g.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Every valid (target, pattern) item for building gene spaces, nearest
/// level first, REG first.
pub fn all_valid_items() -> Vec<(Target, Option<Pattern>)> {
    let mut items = vec![(Target::Reg, None)];
    for level in MemLevel::ALL {
        for p in [
            Pattern::Load,
            Pattern::Store,
            Pattern::LoadStore,
            Pattern::TwoLoadsStore,
            Pattern::Prefetch,
        ] {
            if p.valid_for(level) {
                items.push((Target::Mem(level), Some(p)));
            }
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_example() {
        // §III example: REG:4,L1_L:2,L2_L:1.
        let groups = parse_groups("REG:4,L1_L:2,L2_L:1").unwrap();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], AccessGroup::reg(4));
        assert_eq!(groups[1], AccessGroup::mem(MemLevel::L1, Pattern::Load, 2));
        assert_eq!(groups[2], AccessGroup::mem(MemLevel::L2, Pattern::Load, 1));
    }

    #[test]
    fn round_trips_canonical_form() {
        for s in [
            "REG:1",
            "REG:4,L1_L:2,L2_L:1",
            "REG:10,L1_2LS:3,L2_LS:2,L3_P:1,RAM_P:1",
            "L1_LS:5,RAM_L:1",
        ] {
            let groups = parse_groups(s).unwrap();
            assert_eq!(format_groups(&groups), s);
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let groups = parse_groups(" REG:2 , L1_L:1 ").unwrap();
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        use GroupParseError::*;
        assert_eq!(parse_groups(""), Err(Empty));
        assert!(matches!(parse_groups("REG"), Err(BadTerm(_))));
        assert!(matches!(parse_groups("REG:0"), Err(BadCount(_))));
        assert!(matches!(parse_groups("REG:x"), Err(BadCount(_))));
        assert!(matches!(parse_groups("L9_L:1"), Err(UnknownLevel(_))));
        assert!(matches!(parse_groups("L1_Q:1"), Err(UnknownPattern(_))));
        assert!(matches!(parse_groups("REG_L:1"), Err(RegWithPattern(_))));
        assert!(matches!(parse_groups("REG:1,REG:2"), Err(Duplicate(_))));
    }

    #[test]
    fn pattern_level_validity() {
        // 2LS only for L1; P not for L1.
        assert!(matches!(
            parse_groups("L2_2LS:1"),
            Err(GroupParseError::InvalidCombination(_))
        ));
        assert!(matches!(
            parse_groups("L1_P:1"),
            Err(GroupParseError::InvalidCombination(_))
        ));
        assert!(parse_groups("L1_2LS:1").is_ok());
        assert!(parse_groups("RAM_P:1").is_ok());
    }

    #[test]
    #[should_panic(expected = "not defined")]
    fn constructor_enforces_validity() {
        let _ = AccessGroup::mem(MemLevel::L2, Pattern::TwoLoadsStore, 1);
    }

    #[test]
    fn all_valid_items_consistent_with_grammar() {
        let items = all_valid_items();
        // REG + L1{L,S,LS,2LS} + L2/L3/RAM{L,S,LS,P} = 1 + 4 + 12 = 17.
        assert_eq!(items.len(), 17);
        for (target, pattern) in &items {
            if let (Target::Mem(level), Some(p)) = (target, pattern) {
                assert!(p.valid_for(*level));
            }
        }
        assert_eq!(items[0].0, Target::Reg);
    }

    #[test]
    fn display_tokens() {
        assert_eq!(AccessGroup::reg(4).to_string(), "REG:4");
        assert_eq!(
            AccessGroup::mem(MemLevel::Ram, Pattern::Prefetch, 2).to_string(),
            "RAM_P:2"
        );
        assert_eq!(
            AccessGroup::mem(MemLevel::L1, Pattern::TwoLoadsStore, 1).to_string(),
            "L1_2LS:1"
        );
    }
}
