//! Whole-node error detection (§III-D, parallelized).
//!
//! FIRESTARTER runs the identical deterministic kernel on every hardware
//! thread, so correct cores must hold bit-identical register state after
//! the same number of iterations. Comparing the per-core state hashes
//! detects SIMD faults on overclocked or degraded silicon.
//!
//! The runner's inline check samples two cores; this module replays the
//! kernel for *every* simulated core, fanned out over real OS threads
//! with std's scoped threads (the work is embarrassingly parallel and
//! read-only over the kernel).

use fs2_sim::{Executor, InitScheme, Kernel};

/// A fault to inject on one simulated core (silent-data-corruption test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Core index the fault strikes.
    pub core: u32,
    /// Vector register index (0..=15).
    pub reg: usize,
    /// Lane (0..=3).
    pub lane: usize,
    /// Bit within the lane (0..=63).
    pub bit: u32,
}

/// Result of a whole-node check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// Cores checked.
    pub cores: u32,
    /// The majority (reference) state hash.
    pub reference_hash: u64,
    /// Cores whose state diverged from the reference.
    pub divergent_cores: Vec<u32>,
}

impl CheckReport {
    /// All cores agree.
    pub fn passed(&self) -> bool {
        self.divergent_cores.is_empty()
    }
}

/// Executes `iterations` of `kernel` on `cores` simulated cores (same
/// seed, so correct cores are bit-identical) across up to `threads` OS
/// threads, applying `faults` before execution, and compares state
/// hashes.
pub fn check_all_cores(
    kernel: &Kernel,
    cores: u32,
    iterations: u64,
    init: InitScheme,
    seed: u64,
    faults: &[InjectedFault],
    threads: usize,
) -> CheckReport {
    assert!(cores > 0);
    let threads = threads.clamp(1, cores as usize);
    let mut hashes = vec![0u64; cores as usize];

    std::thread::scope(|scope| {
        // Static partition: contiguous chunks of cores per worker. The
        // work per core is identical, so finer-grained balancing buys
        // nothing.
        for (worker, chunk) in hashes.chunks_mut(cores as usize / threads + 1).enumerate() {
            let base = worker * (cores as usize / threads + 1);
            scope.spawn(move || {
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    let core = (base + offset) as u32;
                    let mut ex = Executor::new(init, seed);
                    for f in faults {
                        if f.core == core {
                            ex.inject_bit_flip(f.reg, f.lane, f.bit);
                        }
                    }
                    ex.run(kernel, iterations);
                    *slot = ex.state_hash();
                }
            });
        }
    });

    // Majority vote for the reference hash (a single faulty core must not
    // be able to define "correct"). BTreeMap, not HashMap: with a count
    // tie (e.g. 2 cores each on two hashes), max_by_key keeps the *last*
    // maximal entry, so hashed iteration order would pick a different
    // winner per process. Ordered iteration makes the tie-break "highest
    // hash among the most common" — a pure function of the inputs.
    let mut counts: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
    for &h in &hashes {
        *counts.entry(h).or_insert(0) += 1;
    }
    let reference_hash = counts
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(&h, _)| h)
        .expect("at least one core");
    let divergent_cores = hashes
        .iter()
        .enumerate()
        .filter(|(_, &h)| h != reference_hash)
        .map(|(i, _)| i as u32)
        .collect();

    CheckReport {
        cores,
        reference_hash,
        divergent_cores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::parse_groups;
    use crate::mix::InstructionMix;
    use crate::payload::{build_payload, PayloadConfig};
    use fs2_arch::Sku;

    fn kernel() -> Kernel {
        build_payload(
            &Sku::amd_epyc_7502(),
            &PayloadConfig {
                mix: InstructionMix::FMA,
                groups: parse_groups("REG:2,L1_LS:1").unwrap(),
                unroll: 30,
            },
        )
        .kernel
    }

    #[test]
    fn all_64_cores_agree_when_healthy() {
        let k = kernel();
        let report = check_all_cores(&k, 64, 200, InitScheme::V2Safe, 7, &[], 8);
        assert!(report.passed());
        assert_eq!(report.cores, 64);
        assert!(report.divergent_cores.is_empty());
    }

    #[test]
    fn faulty_cores_are_identified_exactly() {
        let k = kernel();
        let faults = [
            InjectedFault {
                core: 5,
                reg: 3,
                lane: 1,
                bit: 52,
            },
            InjectedFault {
                core: 17,
                reg: 8,
                lane: 0,
                bit: 3,
            },
        ];
        let report = check_all_cores(&k, 64, 200, InitScheme::V2Safe, 7, &faults, 8);
        assert!(!report.passed());
        assert_eq!(report.divergent_cores, vec![5, 17]);
    }

    #[test]
    fn majority_vote_survives_many_faults() {
        let k = kernel();
        // 3 of 8 cores corrupted: the healthy 5 still define the reference.
        let faults: Vec<InjectedFault> = (0..3)
            .map(|i| InjectedFault {
                core: i,
                reg: i as usize,
                lane: 0,
                bit: 10 + i,
            })
            .collect();
        let report = check_all_cores(&k, 8, 100, InitScheme::V2Safe, 3, &faults, 4);
        assert_eq!(report.divergent_cores, vec![0, 1, 2]);
    }

    #[test]
    fn parallel_matches_serial() {
        let k = kernel();
        let serial = check_all_cores(&k, 16, 150, InitScheme::V2Safe, 11, &[], 1);
        let parallel = check_all_cores(&k, 16, 150, InitScheme::V2Safe, 11, &[], 8);
        assert_eq!(serial.reference_hash, parallel.reference_hash);
        assert_eq!(serial.divergent_cores, parallel.divergent_cores);
    }

    #[test]
    fn single_core_check_is_trivially_green() {
        let k = kernel();
        let report = check_all_cores(&k, 1, 50, InitScheme::V2Safe, 1, &[], 4);
        assert!(report.passed());
    }
}
