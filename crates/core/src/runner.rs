//! Workload execution on simulated time.
//!
//! The runner owns the simulated clock, a session-long power trace (the
//! raw material of Fig. 6/7), a first-order thermal state (the reason the
//! paper preheats for 240 s and excludes 120 s from measurements), and
//! the error-detection / register-dump features of §III-D.

use crate::payload::Payload;
use fs2_arch::Sku;
use fs2_metrics::metric::Summary;
use fs2_metrics::TimeSeries;
use fs2_power::{solve_throttle, NodePowerModel, PowerBreakdown};
use fs2_sim::{
    DecodedKernel, Executor, FunctionalOutcome, HwEvents, InitScheme, Kernel, SimClock, SystemSim,
};

/// Per-run parameters (CLI: `-t`, `--start-delta`, `--stop-delta`, …).
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Requested core frequency (a selectable P-state), MHz.
    pub freq_mhz: f64,
    /// Workload duration in seconds (`-t`).
    pub duration_s: f64,
    /// Seconds excluded from the start of the measurement window
    /// (`--start-delta`, paper default 5 s).
    pub start_delta_s: f64,
    /// Seconds excluded from the end (`--stop-delta`, default 2 s).
    pub stop_delta_s: f64,
    /// Cores running the workload (`None` = all).
    pub active_cores: Option<u32>,
    /// Register/buffer initialization (v2 safe vs. v1.7.4 bug).
    pub init: InitScheme,
    /// Iterations of value-level execution used to measure operand
    /// triviality and drive error detection.
    pub functional_iters: u64,
    /// Compare register-state hashes across simulated cores (§III-D).
    pub error_detection: bool,
    /// Capture a register dump after execution (`--dump-registers`).
    pub dump_registers: bool,
    /// Power-meter sampling rate (LMG95: 20 Sa/s).
    pub sample_rate_hz: f64,
    /// External device power added on top of the node model (GPUs).
    pub external_w: f64,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            freq_mhz: 0.0, // caller must set; 0 = use nominal
            duration_s: 10.0,
            start_delta_s: 5.0,
            stop_delta_s: 2.0,
            active_cores: None,
            init: InitScheme::V2Safe,
            functional_iters: 1500,
            error_detection: false,
            dump_registers: false,
            sample_rate_hz: 20.0,
            external_w: 0.0,
        }
    }
}

/// Everything measured during one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Windowed node power (deltas applied).
    pub power: Summary,
    /// Steady-state decomposition at the applied frequency.
    pub breakdown: PowerBreakdown,
    pub requested_freq_mhz: f64,
    /// EDC-throttled applied frequency (Fig. 12c's metric).
    pub applied_freq_mhz: f64,
    pub throttled: bool,
    /// Steady-state IPC per core.
    pub ipc: f64,
    /// Data-cache accesses per cycle per core (Fig. 9's third metric).
    pub dc_access_rate: f64,
    /// Per-core hardware events over the run.
    pub events: HwEvents,
    /// Fraction of FP lane operations with trivial operands.
    pub trivial_fraction: f64,
    /// `Some(true)` = all cores agree; `Some(false)` = divergence found.
    pub error_check_passed: Option<bool>,
    /// Register dump, if requested.
    pub register_dump: Option<String>,
    /// Measurement window on the session clock.
    pub t_start_s: f64,
    pub t_stop_s: f64,
}

/// First-order thermal model: heat level in [0, 1] trailing power with a
/// time constant; hot silicon leaks more, raising measured power by up to
/// `LEAK_GAIN`. This is what the 240 s preheat of §III-C cancels.
#[derive(Debug, Clone, Copy)]
struct Thermal {
    heat: f64,
}

const THERMAL_TAU_S: f64 = 60.0;
const LEAK_GAIN: f64 = 0.035;
/// Node power that saturates the thermal envelope.
const HEAT_SCALE_W: f64 = 500.0;

impl Thermal {
    fn new() -> Thermal {
        Thermal { heat: 0.0 }
    }

    /// Advances by `dt` seconds at `power_w`, returning the heat level.
    fn step(&mut self, power_w: f64, dt: f64) -> f64 {
        let target = (power_w / HEAT_SCALE_W).clamp(0.0, 1.0);
        let alpha = 1.0 - (-dt / THERMAL_TAU_S).exp();
        self.heat += (target - self.heat) * alpha;
        self.heat
    }
}

/// The workload runner.
pub struct Runner {
    sim: SystemSim,
    power_model: NodePowerModel,
    clock: SimClock,
    trace: TimeSeries,
    thermal: Thermal,
    seed: u64,
    pending_fault: Option<(usize, usize, u32)>,
}

impl Runner {
    pub fn new(sku: Sku) -> Runner {
        Runner::with_seed(sku, 0xF12E_57A2)
    }

    pub fn with_seed(sku: Sku, seed: u64) -> Runner {
        Runner {
            sim: SystemSim::new(sku.clone()),
            power_model: NodePowerModel::new(sku),
            clock: SimClock::new(),
            trace: TimeSeries::new(),
            thermal: Thermal::new(),
            seed,
            pending_fault: None,
        }
    }

    pub fn sku(&self) -> &Sku {
        self.sim.sku()
    }

    /// The seed functional executors are created with — part of the
    /// engine's ExecStats cache key.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when a fault is armed for the next error-detection run.
    /// Fault runs must replay the functional pass live (the engine's
    /// ExecStats cache only describes clean executions).
    pub fn has_pending_fault(&self) -> bool {
        self.pending_fault.is_some()
    }

    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The session-long power trace (Fig. 6/7 raw data).
    pub fn trace(&self) -> &TimeSeries {
        &self.trace
    }

    pub fn power_model(&self) -> &NodePowerModel {
        &self.power_model
    }

    /// Arms a single-bit register fault on the *second* simulated core
    /// for the next error-detection run (silent-data-corruption test).
    pub fn inject_fault_next_run(&mut self, lane: usize, reg: usize, bit: u32) {
        self.pending_fault = Some((reg, lane, bit));
    }

    /// Deterministic sampling ripple: ±0.4 % measurement noise, phase
    /// derived from time so traces are reproducible.
    fn ripple(t_s: f64, base_w: f64) -> f64 {
        base_w * 0.004 * (t_s * 2.7).sin()
    }

    /// Records `duration_s` of idle (between-candidate gaps of the v1.x
    /// tuning prototype — the dips in Fig. 6).
    pub fn idle(&mut self, duration_s: f64, sample_rate_hz: f64) {
        let idle_w = self.power_model.idle_power().total_w();
        self.advance_recording(duration_s, sample_rate_hz, idle_w);
    }

    /// Records `duration_s` at an arbitrary constant base power (used by
    /// the v1 prototype's compile phase, which is busy on one core).
    pub fn hold_power(&mut self, duration_s: f64, sample_rate_hz: f64, base_w: f64) {
        self.advance_recording(duration_s, sample_rate_hz, base_w);
    }

    fn advance_recording(&mut self, duration_s: f64, sample_rate_hz: f64, base_w: f64) {
        assert!(duration_s >= 0.0 && sample_rate_hz > 0.0);
        let dt = 1.0 / sample_rate_hz;
        let t0 = self.clock.now_secs();
        let mut t = t0;
        while t < t0 + duration_s {
            let heat = self.thermal.step(base_w, dt);
            let w = base_w * (1.0 + LEAK_GAIN * heat) + Self::ripple(t, base_w);
            self.trace.push(t, w);
            t += dt;
        }
        self.clock.advance_secs(duration_s);
    }

    /// Runs a payload under `cfg`, advancing the session clock.
    pub fn run(&mut self, payload: &Payload, cfg: &RunConfig) -> RunResult {
        self.run_kernel(&payload.kernel, cfg)
    }

    /// Runs a raw kernel (used by baselines and tests). Pre-decodes the
    /// kernel once for the run; callers that already hold a cached
    /// [`DecodedKernel`] (the engine) use [`Runner::run_prepared`]
    /// instead and skip the decode entirely.
    pub fn run_kernel(&mut self, kernel: &Kernel, cfg: &RunConfig) -> RunResult {
        let decoded = DecodedKernel::new(kernel);
        self.run_prepared(kernel, &decoded, cfg)
    }

    /// Runs a kernel whose micro-op table is already decoded (the
    /// engine memoizes one `DecodedKernel` per cached payload). The
    /// error-detection second pass replays the same shared table — the
    /// kernel is never decoded twice within a run.
    pub fn run_prepared(
        &mut self,
        kernel: &Kernel,
        decoded: &DecodedKernel,
        cfg: &RunConfig,
    ) -> RunResult {
        // 1. Value-level execution: operand triviality + error detection.
        let (outcome, error_check_passed) = self.functional_pass(decoded, cfg);
        let trivial_fraction = outcome.stats.trivial_fraction();
        let register_dump = cfg.dump_registers.then(|| outcome.register_dump());
        self.finish_run(
            kernel,
            cfg,
            trivial_fraction,
            error_check_passed,
            register_dump,
        )
    }

    /// The §III-D value-level pass of a prepared run: the primary
    /// functional outcome plus the error-detection verdict (if enabled).
    /// Narrow tier: two independent [`Executor`] replays, with an armed
    /// fault injected into the second before the hash comparison.
    #[cfg(not(feature = "wide-lanes"))]
    fn functional_pass(
        &mut self,
        decoded: &DecodedKernel,
        cfg: &RunConfig,
    ) -> (FunctionalOutcome, Option<bool>) {
        let mut ex0 = Executor::new(cfg.init, self.seed);
        ex0.run_decoded(decoded, cfg.functional_iters);
        let error_check_passed = if cfg.error_detection {
            let mut ex1 = Executor::new(cfg.init, self.seed);
            ex1.run_decoded(decoded, cfg.functional_iters);
            if let Some((reg, lane, bit)) = self.pending_fault.take() {
                ex1.inject_bit_flip(reg, lane, bit);
            }
            Some(ex0.state_hash() == ex1.state_hash())
        } else {
            None
        };
        (ex0.outcome(), error_check_passed)
    }

    /// Wide-tier variant: the error-detection replay's two redundant
    /// contexts run as one 8-lane pass ([`fs2_sim::run_functional_pair`]),
    /// halving the replay loop count. An armed fault is applied to the
    /// second context's extracted register file and its hash recomputed
    /// — exactly the narrow tier's post-run [`Executor::inject_bit_flip`]
    /// and compare, so results are bit-identical with the feature on or
    /// off (the exec_parity suite pins the tiers to each other).
    #[cfg(feature = "wide-lanes")]
    fn functional_pass(
        &mut self,
        decoded: &DecodedKernel,
        cfg: &RunConfig,
    ) -> (FunctionalOutcome, Option<bool>) {
        if cfg.error_detection {
            let (out0, mut out1) = fs2_sim::run_functional_pair(
                decoded,
                cfg.init,
                self.seed,
                self.seed,
                cfg.functional_iters,
            );
            if let Some((reg, lane, bit)) = self.pending_fault.take() {
                let v = &mut out1.registers[reg % 16][lane % fs2_sim::LANES];
                *v = f64::from_bits(v.to_bits() ^ (1u64 << (bit % 64)));
                out1.state_hash = fs2_sim::state_hash_of(&out1.registers);
            }
            let passed = out0.state_hash == out1.state_hash;
            (out0, Some(passed))
        } else {
            let mut ex = Executor::new(cfg.init, self.seed);
            ex.run_decoded(decoded, cfg.functional_iters);
            (ex.outcome(), None)
        }
    }

    /// Runs a kernel whose functional pass was already computed (the
    /// engine's ExecStats cache): the §III-D value-level replay is
    /// skipped entirely and its results are taken from `functional`.
    ///
    /// `functional` must describe a clean pass of this kernel under
    /// `(cfg.init, self.seed(), cfg.functional_iters)`; with that
    /// contract the result is bit-identical to [`Runner::run_kernel`].
    /// Error detection without an armed fault compares two executors
    /// initialized from the same seed, so it deterministically passes.
    /// Fault-injection runs cannot use this path (panics if one is
    /// armed) — the engine routes them through [`Runner::run_prepared`].
    pub fn run_with_functional(
        &mut self,
        kernel: &Kernel,
        functional: &FunctionalOutcome,
        cfg: &RunConfig,
    ) -> RunResult {
        assert!(
            self.pending_fault.is_none(),
            "fault-injection runs must replay the functional pass live"
        );
        let error_check_passed = cfg.error_detection.then_some(true);
        let register_dump = cfg.dump_registers.then(|| functional.register_dump());
        self.finish_run(
            kernel,
            cfg,
            functional.stats.trivial_fraction(),
            error_check_passed,
            register_dump,
        )
    }

    /// Steps 2–4 of a run, shared by every functional-pass front end:
    /// steady state, power trace, hardware events, windowed summary.
    fn finish_run(
        &mut self,
        kernel: &Kernel,
        cfg: &RunConfig,
        trivial_fraction: f64,
        error_check_passed: Option<bool>,
        register_dump: Option<String>,
    ) -> RunResult {
        let freq = if cfg.freq_mhz > 0.0 {
            cfg.freq_mhz
        } else {
            f64::from(self.sku().nominal_mhz())
        };

        // 2. EDC-aware steady state.
        let throttle = solve_throttle(
            &self.sim,
            &self.power_model,
            kernel,
            freq,
            cfg.active_cores,
            trivial_fraction,
        );
        let base_w = throttle.power.total_w() + cfg.external_w;

        // 3. Power trace over the run window.
        let t_start = self.clock.now_secs();
        self.advance_recording(cfg.duration_s, cfg.sample_rate_hz, base_w);
        let t_stop = self.clock.now_secs();

        // 4. Hardware events at the applied frequency.
        let (_, events) = self.sim.run(
            kernel,
            throttle.applied_mhz,
            cfg.duration_s * 1e9,
            cfg.active_cores,
        );

        let power = Summary::windowed(
            &self.trace,
            t_start,
            t_stop,
            cfg.start_delta_s,
            cfg.stop_delta_s,
        )
        .unwrap_or(Summary {
            mean: base_w,
            min: base_w,
            max: base_w,
            stddev: 0.0,
            samples: 0,
            window_s: 0.0,
        });

        RunResult {
            power,
            breakdown: throttle.power.with_external(cfg.external_w),
            requested_freq_mhz: freq,
            applied_freq_mhz: throttle.applied_mhz,
            throttled: throttle.throttled,
            ipc: throttle.node.core.ipc,
            dc_access_rate: throttle.node.core.dc_accesses_per_cycle,
            events,
            trivial_fraction,
            error_check_passed,
            register_dump,
            t_start_s: t_start,
            t_stop_s: t_stop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::parse_groups;
    use crate::mix::InstructionMix;
    use crate::payload::{build_payload, PayloadConfig};

    fn rome_payload(groups: &str, unroll: u32) -> Payload {
        build_payload(
            &Sku::amd_epyc_7502(),
            &PayloadConfig {
                mix: InstructionMix::FMA,
                groups: parse_groups(groups).unwrap(),
                unroll,
            },
        )
    }

    fn quick_cfg(freq: f64) -> RunConfig {
        RunConfig {
            freq_mhz: freq,
            duration_s: 10.0,
            start_delta_s: 2.0,
            stop_delta_s: 1.0,
            functional_iters: 500,
            ..RunConfig::default()
        }
    }

    #[test]
    fn run_produces_consistent_result() {
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        let p = rome_payload("REG:1", 512);
        let r = runner.run(&p, &quick_cfg(1500.0));
        assert!(r.power.mean > 150.0 && r.power.mean < 350.0);
        assert!(!r.throttled);
        assert_eq!(r.applied_freq_mhz, 1500.0);
        assert!(r.ipc > 3.5);
        assert_eq!(r.trivial_fraction, 0.0);
        assert!(r.events.iterations > 0);
        assert_eq!(r.error_check_passed, None);
        assert!(r.t_stop_s > r.t_start_s);
    }

    #[test]
    fn clock_and_trace_advance_across_runs() {
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        let p = rome_payload("REG:1", 256);
        let r1 = runner.run(&p, &quick_cfg(1500.0));
        let r2 = runner.run(&p, &quick_cfg(1500.0));
        assert!(r2.t_start_s >= r1.t_stop_s);
        assert_eq!(runner.clock().now_secs(), 20.0);
        // 20 Sa/s × 20 s = 400 samples.
        assert_eq!(runner.trace().len(), 400);
    }

    #[test]
    fn thermal_warm_up_raises_power_toward_steady_state() {
        // The §III-C rationale for preheat: a cold node measures lower.
        let mut cold = Runner::new(Sku::amd_epyc_7502());
        let p = rome_payload("REG:1", 512);
        let cold_r = cold.run(&p, &quick_cfg(1500.0));

        let mut hot = Runner::new(Sku::amd_epyc_7502());
        hot.hold_power(240.0, 20.0, 300.0); // preheat
        let hot_r = hot.run(&p, &quick_cfg(1500.0));
        assert!(
            hot_r.power.mean > cold_r.power.mean + 1.0,
            "preheat effect missing: cold {:.1} vs hot {:.1}",
            cold_r.power.mean,
            hot_r.power.mean
        );
    }

    #[test]
    fn idle_gap_shows_in_trace() {
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        let p = rome_payload("REG:1", 256);
        runner.run(&p, &quick_cfg(1500.0));
        runner.idle(5.0, 20.0);
        runner.run(&p, &quick_cfg(1500.0));
        let (min, max) = runner
            .trace()
            .min_max_between(0.0, runner.clock().now_secs())
            .unwrap();
        // The idle dip is far below the load level.
        assert!(min < max * 0.7, "idle gap invisible: {min:.1}..{max:.1}");
    }

    #[test]
    fn error_detection_passes_clean_and_catches_faults() {
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        let p = rome_payload("REG:2,L1_LS:1", 63);
        let mut cfg = quick_cfg(1500.0);
        cfg.error_detection = true;
        let r = runner.run(&p, &cfg);
        assert_eq!(r.error_check_passed, Some(true));

        runner.inject_fault_next_run(2, 5, 51);
        let r = runner.run(&p, &cfg);
        assert_eq!(r.error_check_passed, Some(false));

        // Fault is one-shot.
        let r = runner.run(&p, &cfg);
        assert_eq!(r.error_check_passed, Some(true));
    }

    #[test]
    fn register_dump_available_on_request() {
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        let p = rome_payload("REG:1", 64);
        let mut cfg = quick_cfg(1500.0);
        cfg.dump_registers = true;
        let r = runner.run(&p, &cfg);
        let dump = r.register_dump.expect("dump requested");
        assert!(dump.contains("ymm0"));
        assert!(dump.contains("ymm15"));
    }

    #[test]
    fn v174_init_lowers_power() {
        // §III-D: 314.1 W (v2.0) vs 305.6 W (v1.7.4).
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        let p = rome_payload("REG:1", 512);
        let mut cfg = quick_cfg(2500.0);
        cfg.functional_iters = 2000;
        let healthy = runner.run(&p, &cfg);
        cfg.init = InitScheme::V174Buggy;
        let buggy = runner.run(&p, &cfg);
        assert!(buggy.trivial_fraction > 0.5);
        let delta = healthy.power.mean - buggy.power.mean;
        assert!(
            (2.0..20.0).contains(&delta),
            "v1.7.4 delta = {delta:.1} W (healthy {:.1}, buggy {:.1})",
            healthy.power.mean,
            buggy.power.mean
        );
    }

    /// The fields of a [`RunResult`] that must be bit-identical across
    /// the three functional-pass front ends.
    fn fingerprint(r: &RunResult) -> (u64, u64, u64, Option<bool>, Option<String>, u64) {
        (
            r.power.mean.to_bits(),
            r.applied_freq_mhz.to_bits(),
            r.trivial_fraction.to_bits(),
            r.error_check_passed,
            r.register_dump.clone(),
            r.ipc.to_bits(),
        )
    }

    #[test]
    fn run_prepared_shares_one_decoded_table() {
        // Pin the §III-D refactor: `run_kernel` == `run_prepared` with an
        // externally decoded table, including the error-detection second
        // pass (which replays the *same* shared table, never re-decoding).
        let p = rome_payload("REG:2,L1_LS:1", 63);
        let mut cfg = quick_cfg(1500.0);
        cfg.error_detection = true;
        cfg.dump_registers = true;

        let mut own = Runner::new(Sku::amd_epyc_7502());
        let via_kernel = own.run_kernel(&p.kernel, &cfg);

        let decoded = DecodedKernel::new(&p.kernel);
        let mut shared = Runner::new(Sku::amd_epyc_7502());
        let via_prepared = shared.run_prepared(&p.kernel, &decoded, &cfg);
        assert_eq!(fingerprint(&via_kernel), fingerprint(&via_prepared));

        // The shared table also serves the armed-fault path.
        shared.inject_fault_next_run(2, 5, 51);
        let faulted = shared.run_prepared(&p.kernel, &decoded, &cfg);
        assert_eq!(faulted.error_check_passed, Some(false));
    }

    #[test]
    fn run_with_functional_matches_live_pass() {
        // A cached FunctionalOutcome must reproduce the live run bit for
        // bit: trivial fraction, error check, register dump, power.
        let p = rome_payload("REG:2,L1_LS:1", 63);
        for init in [InitScheme::V2Safe, InitScheme::V174Buggy] {
            let mut cfg = quick_cfg(1500.0);
            cfg.init = init;
            cfg.error_detection = true;
            cfg.dump_registers = true;

            let mut live = Runner::new(Sku::amd_epyc_7502());
            let live_r = live.run_kernel(&p.kernel, &cfg);

            let decoded = DecodedKernel::new(&p.kernel);
            let mut cached = Runner::new(Sku::amd_epyc_7502());
            let outcome =
                fs2_sim::run_functional(&decoded, init, cached.seed(), cfg.functional_iters);
            let cached_r = cached.run_with_functional(&p.kernel, &outcome, &cfg);
            assert_eq!(fingerprint(&live_r), fingerprint(&cached_r));
        }
    }

    #[test]
    #[should_panic(expected = "fault-injection")]
    fn run_with_functional_rejects_armed_faults() {
        let p = rome_payload("REG:1", 64);
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        runner.inject_fault_next_run(1, 1, 8);
        let decoded = DecodedKernel::new(&p.kernel);
        let outcome = fs2_sim::run_functional(&decoded, InitScheme::V2Safe, runner.seed(), 10);
        let mut cfg = quick_cfg(1500.0);
        cfg.error_detection = true;
        let _ = runner.run_with_functional(&p.kernel, &outcome, &cfg);
    }

    #[test]
    fn external_power_is_added() {
        let mut runner = Runner::new(Sku::amd_epyc_7502());
        let p = rome_payload("REG:1", 256);
        let base = runner.run(&p, &quick_cfg(1500.0));
        let mut cfg = quick_cfg(1500.0);
        cfg.external_w = 624.0; // 4 stressed K80s
        let with_gpu = runner.run(&p, &cfg);
        let delta = with_gpu.power.mean - base.power.mean;
        assert!((delta - 624.0).abs() < 40.0, "GPU delta = {delta:.1}");
    }
}
