//! The metric abstraction and windowed summaries.

use crate::series::TimeSeries;
use std::collections::BTreeMap;

/// Windowed statistics of a metric over a measurement run.
///
/// Mirrors the paper's reporting: "values are averaged over the whole
/// runtime, excluding an arbitrary time during the start and end of the
/// measurement run, with a default of 5 s and 2 s".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub stddev: f64,
    pub samples: usize,
    /// Effective window after delta exclusion, seconds.
    pub window_s: f64,
}

impl Summary {
    /// Summarizes `series` between `t_start`/`t_stop` after shaving
    /// `start_delta_s` off the front and `stop_delta_s` off the back.
    pub fn windowed(
        series: &TimeSeries,
        t_start: f64,
        t_stop: f64,
        start_delta_s: f64,
        stop_delta_s: f64,
    ) -> Option<Summary> {
        let t0 = t_start + start_delta_s;
        let t1 = t_stop - stop_delta_s;
        if t1 <= t0 {
            return None;
        }
        let mean = series.mean_between(t0, t1)?;
        let (min, max) = series.min_max_between(t0, t1)?;
        let stddev = series.stddev_between(t0, t1)?;
        let samples = series.window(t0, t1).count();
        Some(Summary {
            mean,
            min,
            max,
            stddev,
            samples,
            window_s: t1 - t0,
        })
    }
}

/// A named measurement source.
///
/// The runner drives metrics on simulated time: at every sampling point it
/// calls [`Metric::record`] implementations (builtins pull from the power
/// model / event counters; external plugins compute their own value), and
/// after the run it summarizes the collected series.
pub trait Metric: Send {
    /// Registry name (e.g. `"rapl"`, `"perf-ipc"`, `"metricq"`).
    fn name(&self) -> &str;
    /// Unit for display (e.g. `"W"`).
    fn unit(&self) -> &str;
    /// Whether larger values are better for optimization (power and IPC
    /// both are).
    fn maximize(&self) -> bool {
        true
    }
    /// Records the sample for simulated time `t_s`.
    fn record(&mut self, t_s: f64, value: f64);
    /// The collected series.
    fn series(&self) -> &TimeSeries;
    /// Clears collected samples (between tuning candidates).
    fn reset(&mut self);

    /// Windowed summary of the collected series.
    fn summarize(
        &self,
        t_start: f64,
        t_stop: f64,
        start_delta_s: f64,
        stop_delta_s: f64,
    ) -> Option<Summary> {
        Summary::windowed(self.series(), t_start, t_stop, start_delta_s, stop_delta_s)
    }
}

/// Name-keyed collection of metrics (the `--list-metrics` /
/// `--optimization-metric` machinery).
#[derive(Default)]
pub struct MetricRegistry {
    metrics: BTreeMap<String, Box<dyn Metric>>,
}

impl MetricRegistry {
    pub fn new() -> MetricRegistry {
        MetricRegistry::default()
    }

    /// Registers a metric; returns `false` if the name already exists.
    pub fn register(&mut self, metric: Box<dyn Metric>) -> bool {
        let name = metric.name().to_string();
        if self.metrics.contains_key(&name) {
            return false;
        }
        self.metrics.insert(name, metric);
        true
    }

    /// Sorted metric names.
    pub fn names(&self) -> Vec<String> {
        self.metrics.keys().cloned().collect()
    }

    pub fn get(&self, name: &str) -> Option<&dyn Metric> {
        self.metrics.get(name).map(|b| b.as_ref())
    }

    pub fn get_mut(&mut self, name: &str) -> Option<&mut Box<dyn Metric>> {
        self.metrics.get_mut(name)
    }

    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Resets every metric (between tuning candidates).
    pub fn reset_all(&mut self) {
        for m in self.metrics.values_mut() {
            m.reset();
        }
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Metric> {
        self.metrics.values().map(|b| b.as_ref())
    }
}

/// A metric that stores externally computed values — the "custom metrics
/// via external binaries, scripts, and libraries" path of §III-C. The
/// provider closure plays the role of the loaded shared object.
pub struct ExternalMetric {
    name: String,
    unit: String,
    provider: Box<dyn FnMut(f64) -> f64 + Send>,
    series: TimeSeries,
}

impl ExternalMetric {
    pub fn new(
        name: impl Into<String>,
        unit: impl Into<String>,
        provider: Box<dyn FnMut(f64) -> f64 + Send>,
    ) -> ExternalMetric {
        ExternalMetric {
            name: name.into(),
            unit: unit.into(),
            provider,
            series: TimeSeries::new(),
        }
    }

    /// Samples the provider at time `t_s` (runner tick).
    pub fn poll(&mut self, t_s: f64) {
        let v = (self.provider)(t_s);
        self.series.push(t_s, v);
    }
}

impl Metric for ExternalMetric {
    fn name(&self) -> &str {
        &self.name
    }

    fn unit(&self) -> &str {
        &self.unit
    }

    fn record(&mut self, t_s: f64, _value: f64) {
        // External metrics compute their own value; the runner's value
        // argument is ignored (parity with the plugin ABI).
        self.poll(t_s);
    }

    fn series(&self) -> &TimeSeries {
        &self.series
    }

    fn reset(&mut self) {
        self.series.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy {
        series: TimeSeries,
    }

    impl Dummy {
        fn new() -> Dummy {
            Dummy {
                series: TimeSeries::new(),
            }
        }
    }

    impl Metric for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
        fn unit(&self) -> &str {
            "x"
        }
        fn record(&mut self, t_s: f64, value: f64) {
            self.series.push(t_s, value);
        }
        fn series(&self) -> &TimeSeries {
            &self.series
        }
        fn reset(&mut self) {
            self.series.clear();
        }
    }

    #[test]
    fn summary_excludes_deltas() {
        let mut m = Dummy::new();
        // Warm-up transient at 10 W, steady state at 100 W, tail at 5 W.
        for i in 0..10 {
            m.record(i as f64, 10.0);
        }
        for i in 10..110 {
            m.record(i as f64, 100.0);
        }
        for i in 110..112 {
            m.record(i as f64, 5.0);
        }
        let s = m.summarize(0.0, 112.0, 10.0, 2.5).unwrap();
        assert!((s.mean - 100.0).abs() < 1e-9, "mean = {}", s.mean);
        assert_eq!(s.min, 100.0);
        assert_eq!(s.max, 100.0);
        assert!((s.window_s - 99.5).abs() < 1e-9);
    }

    #[test]
    fn summary_none_when_window_collapses() {
        let mut m = Dummy::new();
        m.record(0.0, 1.0);
        assert!(m.summarize(0.0, 10.0, 6.0, 6.0).is_none());
    }

    #[test]
    fn registry_rejects_duplicates_and_sorts() {
        let mut r = MetricRegistry::new();
        assert!(r.register(Box::new(Dummy::new())));
        assert!(!r.register(Box::new(Dummy::new())));
        assert_eq!(r.names(), vec!["dummy".to_string()]);
        assert_eq!(r.len(), 1);
        assert!(r.get("dummy").is_some());
        assert!(r.get("nope").is_none());
    }

    #[test]
    fn registry_reset_all() {
        let mut r = MetricRegistry::new();
        r.register(Box::new(Dummy::new()));
        r.get_mut("dummy").unwrap().record(0.0, 1.0);
        assert_eq!(r.get("dummy").unwrap().series().len(), 1);
        r.reset_all();
        assert_eq!(r.get("dummy").unwrap().series().len(), 0);
    }

    #[test]
    fn external_metric_uses_provider() {
        // A "Python script forwarding an external power meter" stand-in.
        let mut m = ExternalMetric::new("lmg95", "W", Box::new(|t| 300.0 + t));
        m.record(1.0, 999.0); // provider value wins; 999 ignored
        m.record(2.0, 999.0);
        let s = m.series().samples();
        assert_eq!(s.len(), 2);
        assert!((s[0].value - 301.0).abs() < 1e-12);
        assert!((s[1].value - 302.0).abs() < 1e-12);
        assert_eq!(m.unit(), "W");
    }
}
