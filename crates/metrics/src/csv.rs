//! Hand-rolled CSV output and ingestion.
//!
//! The paper: "Optimization metrics can also be used for measurements,
//! where a list of comma-separated values (CSV) are printed after the
//! execution of the workload." No serializer crate is in the allowed
//! dependency set, so quoting/escaping is implemented here (RFC 4180
//! subset: quote fields containing comma, quote or newline; double
//! embedded quotes). [`CsvReader`] is the exact inverse used by the
//! calibration path to ingest target traces: every malformed input is
//! a typed [`CsvError`], never a panic.

use std::fmt;
use std::fmt::Write as _;

/// Minimal CSV writer accumulating into a string.
#[derive(Debug, Default, Clone)]
pub struct CsvWriter {
    out: String,
    columns: usize,
}

fn needs_quoting(field: &str) -> bool {
    field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r')
}

fn escape(field: &str) -> String {
    if needs_quoting(field) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl CsvWriter {
    pub fn new() -> CsvWriter {
        CsvWriter::default()
    }

    /// Writes the header row and fixes the column count.
    pub fn header(&mut self, names: &[&str]) -> &mut Self {
        assert_eq!(self.columns, 0, "header must be written first");
        assert!(!names.is_empty());
        self.columns = names.len();
        let row: Vec<String> = names.iter().map(|n| escape(n)).collect();
        let _ = writeln!(self.out, "{}", row.join(","));
        self
    }

    /// Writes one row of string fields; panics on column-count mismatch.
    pub fn row(&mut self, fields: &[String]) -> &mut Self {
        assert_eq!(
            fields.len(),
            self.columns,
            "row has {} fields, header has {}",
            fields.len(),
            self.columns
        );
        let row: Vec<String> = fields.iter().map(|f| escape(f)).collect();
        let _ = writeln!(self.out, "{}", row.join(","));
        self
    }

    /// Convenience for numeric rows.
    pub fn row_f64(&mut self, fields: &[f64]) -> &mut Self {
        let rendered: Vec<String> = fields.iter().map(|v| format!("{v}")).collect();
        self.row(&rendered)
    }

    /// The accumulated CSV text.
    pub fn finish(self) -> String {
        self.out
    }

    pub fn as_str(&self) -> &str {
        &self.out
    }
}

/// A typed CSV ingestion failure. Every variant names where the input
/// went wrong; parsing never panics on untrusted text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input has no header row (empty or whitespace-only text).
    Empty,
    /// A quoted field was never closed (1-based line of its opening
    /// quote).
    UnclosedQuote { line: usize },
    /// A data row's field count differs from the header's (1-based
    /// line number).
    ShortRow {
        line: usize,
        got: usize,
        want: usize,
    },
    /// A lookup asked for a column the header does not declare.
    MissingColumn { name: String },
    /// A field failed numeric conversion (1-based line, column name,
    /// offending text).
    BadNumber {
        line: usize,
        column: String,
        value: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Empty => write!(f, "empty CSV input: no header row"),
            CsvError::UnclosedQuote { line } => {
                write!(f, "line {line}: unclosed quoted field")
            }
            CsvError::ShortRow { line, got, want } => {
                write!(f, "line {line}: {got} fields, header has {want}")
            }
            CsvError::MissingColumn { name } => {
                write!(f, "missing column {name:?}")
            }
            CsvError::BadNumber {
                line,
                column,
                value,
            } => {
                write!(f, "line {line}, column {column:?}: bad number {value:?}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// A parsed CSV table: one header row fixing the column set, then data
/// rows with exactly that many fields. Accepts everything
/// [`CsvWriter`] emits (quoted fields, doubled embedded quotes,
/// newlines inside quotes, `\r\n` line ends) and round-trips it.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvReader {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    /// 1-based source line each data row started on (for error
    /// reporting on fields with embedded newlines).
    row_lines: Vec<usize>,
}

impl CsvReader {
    /// Parses CSV text. The first record is the header; every data
    /// record must match its field count.
    pub fn parse(text: &str) -> Result<CsvReader, CsvError> {
        let mut records: Vec<(usize, Vec<String>)> = Vec::new();
        let mut field = String::new();
        let mut record: Vec<String> = Vec::new();
        let mut line = 1usize;
        let mut record_line = 1usize;
        let mut in_quotes = false;
        let mut quote_line = 1usize;
        // True once the current record has any content (field text, a
        // comma, or an opening quote) — distinguishes a trailing
        // newline from an empty final record.
        let mut record_started = false;
        let mut chars = text.chars().peekable();
        while let Some(c) = chars.next() {
            if in_quotes {
                match c {
                    '"' => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            field.push('"');
                        } else {
                            in_quotes = false;
                        }
                    }
                    '\n' => {
                        line += 1;
                        field.push('\n');
                    }
                    c => field.push(c),
                }
                continue;
            }
            match c {
                '"' => {
                    in_quotes = true;
                    quote_line = line;
                    record_started = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                    record_started = true;
                }
                '\r' if chars.peek() == Some(&'\n') => {}
                '\n' => {
                    if record_started || !field.is_empty() {
                        record.push(std::mem::take(&mut field));
                        records.push((record_line, std::mem::take(&mut record)));
                    }
                    record_started = false;
                    line += 1;
                    record_line = line;
                }
                c => {
                    field.push(c);
                    record_started = true;
                }
            }
        }
        if in_quotes {
            return Err(CsvError::UnclosedQuote { line: quote_line });
        }
        if record_started || !field.is_empty() {
            record.push(field);
            records.push((record_line, record));
        }
        let mut it = records.into_iter();
        let (_, header) = it.next().ok_or(CsvError::Empty)?;
        let want = header.len();
        let mut rows = Vec::new();
        let mut row_lines = Vec::new();
        for (row_line, row) in it {
            if row.len() != want {
                return Err(CsvError::ShortRow {
                    line: row_line,
                    got: row.len(),
                    want,
                });
            }
            row_lines.push(row_line);
            rows.push(row);
        }
        Ok(CsvReader {
            header,
            rows,
            row_lines,
        })
    }

    /// The header fields, in declaration order.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows (header excluded).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Index of a named column, or [`CsvError::MissingColumn`].
    pub fn column(&self, name: &str) -> Result<usize, CsvError> {
        self.header
            .iter()
            .position(|h| h == name)
            .ok_or_else(|| CsvError::MissingColumn {
                name: name.to_string(),
            })
    }

    /// The string field at `(row, col)`.
    pub fn field(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Parses the field at `(row, col)` as `f64`;
    /// [`CsvError::BadNumber`] on non-numeric or non-finite text.
    pub fn f64_at(&self, row: usize, col: usize) -> Result<f64, CsvError> {
        let text = self.field(row, col);
        match text.trim().parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(v),
            _ => Err(self.bad_number(row, col)),
        }
    }

    /// Parses the field at `(row, col)` as `u64`.
    pub fn u64_at(&self, row: usize, col: usize) -> Result<u64, CsvError> {
        let text = self.field(row, col);
        text.trim()
            .parse::<u64>()
            .map_err(|_| self.bad_number(row, col))
    }

    fn bad_number(&self, row: usize, col: usize) -> CsvError {
        CsvError::BadNumber {
            line: self.row_lines[row],
            column: self.header[col].clone(),
            value: self.rows[row][col].clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_table() {
        let mut w = CsvWriter::new();
        w.header(&["metric", "mean", "unit"]);
        w.row(&["rapl".into(), "437.2".into(), "W".into()]);
        w.row(&[
            "perf-ipc".into(),
            "3.39".into(),
            "instructions/cycle".into(),
        ]);
        let out = w.finish();
        assert_eq!(
            out,
            "metric,mean,unit\nrapl,437.2,W\nperf-ipc,3.39,instructions/cycle\n"
        );
    }

    #[test]
    fn escaping_rules() {
        let mut w = CsvWriter::new();
        w.header(&["name", "note"]);
        w.row(&["a,b".into(), "says \"hi\"".into()]);
        w.row(&["multi\nline".into(), "ok".into()]);
        let out = w.finish();
        let lines: Vec<&str> = out.split('\n').collect();
        assert_eq!(lines[1], "\"a,b\",\"says \"\"hi\"\"\"");
        assert!(out.contains("\"multi\nline\",ok"));
    }

    #[test]
    #[should_panic(expected = "row has 1 fields")]
    fn column_mismatch_panics() {
        let mut w = CsvWriter::new();
        w.header(&["a", "b"]);
        w.row(&["only-one".into()]);
    }

    #[test]
    fn numeric_rows() {
        let mut w = CsvWriter::new();
        w.header(&["t", "power"]);
        w.row_f64(&[0.05, 437.25]);
        assert_eq!(w.as_str(), "t,power\n0.05,437.25\n");
    }

    #[test]
    fn reader_round_trips_writer_output() {
        let mut w = CsvWriter::new();
        w.header(&["name", "note", "w"]);
        w.row(&["a,b".into(), "says \"hi\"".into(), "1.5".into()]);
        w.row(&["multi\nline".into(), "ok".into(), "-2".into()]);
        let r = CsvReader::parse(w.as_str()).unwrap();
        assert_eq!(r.header(), &["name", "note", "w"]);
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.field(0, 0), "a,b");
        assert_eq!(r.field(0, 1), "says \"hi\"");
        assert_eq!(r.field(1, 0), "multi\nline");
        assert_eq!(r.f64_at(0, 2), Ok(1.5));
        assert_eq!(r.f64_at(1, 2), Ok(-2.0));
        // Re-emitting through the writer reproduces the bytes.
        let mut again = CsvWriter::new();
        let names: Vec<&str> = r.header().iter().map(|s| s.as_str()).collect();
        again.header(&names);
        for row in r.rows() {
            again.row(row);
        }
        assert_eq!(again.as_str(), w.as_str());
    }

    #[test]
    fn reader_accepts_crlf_and_missing_final_newline() {
        let r = CsvReader::parse("a,b\r\n1,2\r\n3,4").unwrap();
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.field(1, 1), "4");
        assert_eq!(r.u64_at(0, 0), Ok(1));
    }

    #[test]
    fn reader_typed_errors() {
        assert_eq!(CsvReader::parse(""), Err(CsvError::Empty));
        assert_eq!(CsvReader::parse("\n\n"), Err(CsvError::Empty));
        assert_eq!(
            CsvReader::parse("a,b\n1\n"),
            Err(CsvError::ShortRow {
                line: 2,
                got: 1,
                want: 2
            })
        );
        assert_eq!(
            CsvReader::parse("a,b\n1,2,3\n"),
            Err(CsvError::ShortRow {
                line: 2,
                got: 3,
                want: 2
            })
        );
        assert_eq!(
            CsvReader::parse("a,\"b\n"),
            Err(CsvError::UnclosedQuote { line: 1 })
        );
        let r = CsvReader::parse("a,b\nx,2\n").unwrap();
        assert_eq!(
            r.column("c"),
            Err(CsvError::MissingColumn { name: "c".into() })
        );
        assert_eq!(
            r.f64_at(0, 0),
            Err(CsvError::BadNumber {
                line: 2,
                column: "a".into(),
                value: "x".into()
            })
        );
        // Non-finite numbers are rejected, not smuggled through.
        let r = CsvReader::parse("a\nNaN\ninf\n").unwrap();
        assert!(matches!(r.f64_at(0, 0), Err(CsvError::BadNumber { .. })));
        assert!(matches!(r.f64_at(1, 0), Err(CsvError::BadNumber { .. })));
    }

    #[test]
    fn reader_header_only_is_zero_rows() {
        let r = CsvReader::parse("node,tick,power_w\n").unwrap();
        assert_eq!(r.n_rows(), 0);
        assert_eq!(r.column("power_w"), Ok(2));
    }
}
