//! Hand-rolled CSV output (`--measurement` reporting).
//!
//! The paper: "Optimization metrics can also be used for measurements,
//! where a list of comma-separated values (CSV) are printed after the
//! execution of the workload." No serializer crate is in the allowed
//! dependency set, so quoting/escaping is implemented here (RFC 4180
//! subset: quote fields containing comma, quote or newline; double
//! embedded quotes).

use std::fmt::Write as _;

/// Minimal CSV writer accumulating into a string.
#[derive(Debug, Default, Clone)]
pub struct CsvWriter {
    out: String,
    columns: usize,
}

fn needs_quoting(field: &str) -> bool {
    field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r')
}

fn escape(field: &str) -> String {
    if needs_quoting(field) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl CsvWriter {
    pub fn new() -> CsvWriter {
        CsvWriter::default()
    }

    /// Writes the header row and fixes the column count.
    pub fn header(&mut self, names: &[&str]) -> &mut Self {
        assert_eq!(self.columns, 0, "header must be written first");
        assert!(!names.is_empty());
        self.columns = names.len();
        let row: Vec<String> = names.iter().map(|n| escape(n)).collect();
        let _ = writeln!(self.out, "{}", row.join(","));
        self
    }

    /// Writes one row of string fields; panics on column-count mismatch.
    pub fn row(&mut self, fields: &[String]) -> &mut Self {
        assert_eq!(
            fields.len(),
            self.columns,
            "row has {} fields, header has {}",
            fields.len(),
            self.columns
        );
        let row: Vec<String> = fields.iter().map(|f| escape(f)).collect();
        let _ = writeln!(self.out, "{}", row.join(","));
        self
    }

    /// Convenience for numeric rows.
    pub fn row_f64(&mut self, fields: &[f64]) -> &mut Self {
        let rendered: Vec<String> = fields.iter().map(|v| format!("{v}")).collect();
        self.row(&rendered)
    }

    /// The accumulated CSV text.
    pub fn finish(self) -> String {
        self.out
    }

    pub fn as_str(&self) -> &str {
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_table() {
        let mut w = CsvWriter::new();
        w.header(&["metric", "mean", "unit"]);
        w.row(&["rapl".into(), "437.2".into(), "W".into()]);
        w.row(&[
            "perf-ipc".into(),
            "3.39".into(),
            "instructions/cycle".into(),
        ]);
        let out = w.finish();
        assert_eq!(
            out,
            "metric,mean,unit\nrapl,437.2,W\nperf-ipc,3.39,instructions/cycle\n"
        );
    }

    #[test]
    fn escaping_rules() {
        let mut w = CsvWriter::new();
        w.header(&["name", "note"]);
        w.row(&["a,b".into(), "says \"hi\"".into()]);
        w.row(&["multi\nline".into(), "ok".into()]);
        let out = w.finish();
        let lines: Vec<&str> = out.split('\n').collect();
        assert_eq!(lines[1], "\"a,b\",\"says \"\"hi\"\"\"");
        assert!(out.contains("\"multi\nline\",ok"));
    }

    #[test]
    #[should_panic(expected = "row has 1 fields")]
    fn column_mismatch_panics() {
        let mut w = CsvWriter::new();
        w.header(&["a", "b"]);
        w.row(&["only-one".into()]);
    }

    #[test]
    fn numeric_rows() {
        let mut w = CsvWriter::new();
        w.header(&["t", "power"]);
        w.row_f64(&[0.05, 437.25]);
        assert_eq!(w.as_str(), "t,power\n0.05,437.25\n");
    }
}
