//! # fs2-metrics — metric framework
//!
//! FIRESTARTER 2's optimization loop consumes *metrics*: time series of
//! measurements summarized over a window that excludes warm-up and
//! tear-down transients (`--start-delta`/`--stop-delta`). The paper ships
//! three built-ins — RAPL power, perf IPC, and an IPC estimate — plus a
//! plugin interface for external meters (their case study feeds a ZES
//! LMG95 through MetricQ).
//!
//! This crate reproduces that stack on simulated time:
//!
//! * [`series`] — fixed- or variable-rate time series with windowed
//!   statistics.
//! * [`metric`] — the [`metric::Metric`] trait, summaries, and the metric
//!   registry (`--list-metrics` equivalent).
//! * [`builtin`] — the three built-in metric implementations, fed by the
//!   runner from `fs2-power`/`fs2-sim` state.
//! * [`metricq`] — the buffered out-of-band source of Fig. 10: samples
//!   flow through a channel and are retrieved *after* a workload candidate
//!   finishes, exactly like the remote MetricQ setup.
//! * [`csv`] — comma-separated output (`--measurement` reporting) and
//!   ingestion ([`CsvReader`], used by trace calibration).

pub mod builtin;
pub mod csv;
pub mod metric;
pub mod metricq;
pub mod series;

pub use builtin::{IpcEstimateMetric, PerfIpcMetric, RaplPowerMetric};
pub use csv::{CsvError, CsvReader, CsvWriter};
pub use metric::{ExternalMetric, Metric, MetricRegistry, Summary};
pub use metricq::{channel, channel_bounded, MetricQSink, MetricQSource, MetricQueue};
pub use series::{Sample, TimeSeries};
