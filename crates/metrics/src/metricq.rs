//! Buffered out-of-band metric source (the MetricQ path of Fig. 10).
//!
//! In the paper's setup, the LMG95 power meter samples at 20 Sa/s and
//! streams into MetricQ, "where they are buffered. After a workload
//! candidate finished execution, the values are retrieved and processed by
//! FIRESTARTER". The essential property — samples accumulate while the
//! workload runs and are drained afterwards — is reproduced with an
//! in-process queue between the measurement side (sink) and the
//! consumer (source/metric).
//!
//! The queue itself is the generic [`MetricQueue`]: a mutex/condvar
//! MPMC channel (crates.io is unavailable offline, so no crossbeam)
//! with an optional capacity bound. The metric sink/source pair rides
//! it for `Sample`s, and the fleet-service broker (`fs2-service`)
//! reuses the same seam for its JSON-line request/reply streams —
//! the broker-mediated front-end the paper's metricq integration
//! points at, with backpressure coming from the capacity bound.

use crate::metric::Metric;
use crate::series::{Sample, TimeSeries};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, Weak};

/// A push failed because the queue is full or closed; the rejected
/// value is handed back so the producer can retry or shed it.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at its capacity bound (backpressure).
    Full(T),
    /// The queue was closed; no consumer will ever see the value.
    Closed(T),
}

struct QueueState<T> {
    q: VecDeque<T>,
    closed: bool,
}

/// Bounded or unbounded MPMC queue: the channel seam shared by the
/// MetricQ sink/source pair and the fleet-service broker. All
/// operations are non-blocking unless the `_wait` variant is called.
pub struct MetricQueue<T> {
    state: Mutex<QueueState<T>>,
    cv: Condvar,
    capacity: Option<usize>,
}

impl<T> MetricQueue<T> {
    /// A queue with no capacity bound (the historical MetricQ buffer).
    pub fn unbounded() -> MetricQueue<T> {
        MetricQueue {
            state: Mutex::new(QueueState {
                q: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: None,
        }
    }

    /// A queue holding at most `capacity` items; pushes beyond that
    /// fail ([`PushError::Full`]) or block ([`MetricQueue::push_wait`])
    /// until a consumer drains — the broker's backpressure.
    pub fn bounded(capacity: usize) -> MetricQueue<T> {
        assert!(capacity > 0, "a bounded queue needs at least one slot");
        MetricQueue {
            state: Mutex::new(QueueState {
                q: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: Some(capacity),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state.lock().expect("metricq queue poisoned")
    }

    /// Non-blocking push; fails with the value when full or closed.
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        let mut s = self.lock();
        if s.closed {
            return Err(PushError::Closed(value));
        }
        if let Some(cap) = self.capacity {
            if s.q.len() >= cap {
                return Err(PushError::Full(value));
            }
        }
        s.q.push_back(value);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocking push: waits while the queue is at capacity. Returns the
    /// value when the queue closes before a slot frees.
    pub fn push_wait(&self, value: T) -> Result<(), T> {
        let mut s = self.lock();
        loop {
            if s.closed {
                return Err(value);
            }
            match self.capacity {
                Some(cap) if s.q.len() >= cap => {
                    s = self.cv.wait(s).expect("metricq queue poisoned");
                }
                _ => {
                    s.q.push_back(value);
                    self.cv.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        let mut s = self.lock();
        let v = s.q.pop_front();
        if v.is_some() {
            // A slot freed: wake one blocked producer.
            self.cv.notify_one();
        }
        v
    }

    /// Blocking pop: waits for an item; `None` once the queue is closed
    /// and drained.
    pub fn pop_wait(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(v) = s.q.pop_front() {
                self.cv.notify_one();
                return Some(v);
            }
            if s.closed {
                return None;
            }
            s = self.cv.wait(s).expect("metricq queue poisoned");
        }
    }

    /// Removes and returns everything currently buffered, preserving
    /// push order.
    pub fn drain_all(&self) -> Vec<T> {
        let mut s = self.lock();
        let out: Vec<T> = s.q.drain(..).collect();
        if !out.is_empty() {
            self.cv.notify_all();
        }
        out
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.lock().q.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().q.is_empty()
    }

    /// The capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Closes the queue: pending items stay poppable, new pushes fail,
    /// and every blocked producer/consumer wakes.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Whether [`MetricQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

impl<T> std::fmt::Debug for MetricQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.lock();
        f.debug_struct("MetricQueue")
            .field("len", &s.q.len())
            .field("capacity", &self.capacity)
            .field("closed", &s.closed)
            .finish()
    }
}

/// The shared sink/source buffer.
type Buffer = Arc<MetricQueue<Sample>>;

/// A send failed: the buffer is full (bounded channels only) or the
/// source was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// Capacity bound reached — the consumer must drain first.
    Full,
    /// No consumer: the [`MetricQSource`] is gone.
    Disconnected,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Full => f.write_str("metricq buffer full"),
            SendError::Disconnected => f.write_str("metricq source dropped"),
        }
    }
}

impl std::error::Error for SendError {}

/// The producing half: lives with the power meter / measurement server.
/// Holds only a weak handle so a dropped [`MetricQSource`] stops the
/// buffer from growing (the channel-disconnect semantics of the real
/// MetricQ path: samples with no consumer are discarded).
#[derive(Debug, Clone)]
pub struct MetricQSink {
    tx: Weak<MetricQueue<Sample>>,
    rate_hz: f64,
}

impl MetricQSink {
    /// Sends one sample into the buffer, best-effort: dropped if the
    /// source is gone or the buffer is at capacity (the real meter
    /// keeps sampling whether anyone listens or not). Use
    /// [`MetricQSink::try_send`] to observe backpressure instead.
    pub fn send(&self, t_s: f64, value: f64) {
        let _ = self.try_send(t_s, value);
    }

    /// Sends one sample, surfacing why it could not be buffered — the
    /// backpressure signal a bounded broker channel needs.
    pub fn try_send(&self, t_s: f64, value: f64) -> Result<(), SendError> {
        match self.tx.upgrade() {
            None => Err(SendError::Disconnected),
            Some(q) => q.try_push(Sample { t_s, value }).map_err(|e| match e {
                PushError::Full(_) => SendError::Full,
                PushError::Closed(_) => SendError::Disconnected,
            }),
        }
    }

    /// Samples a continuous window `[t0, t1)` at the configured rate,
    /// evaluating `f(t)` at each sampling point — the 20 Sa/s LMG95
    /// behaviour.
    pub fn sample_window(&self, t0: f64, t1: f64, mut f: impl FnMut(f64) -> f64) {
        let dt = 1.0 / self.rate_hz;
        let mut t = t0;
        while t < t1 {
            self.send(t, f(t));
            t += dt;
        }
    }

    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }
}

/// The consuming half: a [`Metric`] whose series fills when drained.
pub struct MetricQSource {
    name: String,
    rx: Buffer,
    series: TimeSeries,
}

/// Creates a connected sink/source pair with an unbounded buffer.
///
/// `rate_hz` is the meter sampling rate (the paper uses 20 Sa/s).
pub fn channel(name: impl Into<String>, rate_hz: f64) -> (MetricQSink, MetricQSource) {
    connect(name, rate_hz, Arc::new(MetricQueue::unbounded()))
}

/// Creates a connected sink/source pair whose buffer holds at most
/// `capacity` samples: sends beyond that fail with [`SendError::Full`]
/// until the source drains — the broker-side backpressure bound.
pub fn channel_bounded(
    name: impl Into<String>,
    rate_hz: f64,
    capacity: usize,
) -> (MetricQSink, MetricQSource) {
    connect(name, rate_hz, Arc::new(MetricQueue::bounded(capacity)))
}

fn connect(name: impl Into<String>, rate_hz: f64, buffer: Buffer) -> (MetricQSink, MetricQSource) {
    assert!(rate_hz > 0.0);
    (
        MetricQSink {
            tx: Arc::downgrade(&buffer),
            rate_hz,
        },
        MetricQSource {
            name: name.into(),
            rx: buffer,
            series: TimeSeries::new(),
        },
    )
}

impl MetricQSource {
    /// Drains all buffered samples into the local series (called after a
    /// workload candidate finishes). Returns the number of new samples.
    pub fn drain(&mut self) -> usize {
        let drained = self.rx.drain_all();
        let n = drained.len();
        for s in drained {
            self.series.push(s.t_s, s.value);
        }
        n
    }

    /// Non-blocking: consumes at most one buffered sample into the
    /// series and returns it. `None` when nothing is pending — the
    /// incremental counterpart of [`MetricQSource::drain`] for
    /// consumers that interleave work with the meter stream.
    pub fn try_recv(&mut self) -> Option<Sample> {
        let s = self.rx.try_pop()?;
        self.series.push(s.t_s, s.value);
        Some(s)
    }

    /// Buffered samples not yet drained.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }

    /// The buffer's capacity bound (`None` for unbounded channels).
    pub fn capacity(&self) -> Option<usize> {
        self.rx.capacity()
    }
}

impl Metric for MetricQSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn unit(&self) -> &str {
        "W"
    }

    fn record(&mut self, _t_s: f64, _value: f64) {
        // Out-of-band source: data arrives through the channel, the
        // runner's tick is just an opportunity to drain.
        self.drain();
    }

    fn series(&self) -> &TimeSeries {
        &self.series
    }

    fn reset(&mut self) {
        // Discard anything buffered from a previous candidate, then clear.
        let _ = self.drain();
        self.series.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Summary;

    #[test]
    fn buffered_then_drained() {
        let (sink, mut source) = channel("metricq", 20.0);
        sink.send(0.0, 300.0);
        sink.send(0.05, 301.0);
        assert_eq!(source.pending(), 2);
        assert!(source.series().is_empty());
        assert_eq!(source.drain(), 2);
        assert_eq!(source.series().len(), 2);
        assert_eq!(source.pending(), 0);
    }

    #[test]
    fn window_sampling_at_rate() {
        let (sink, mut source) = channel("metricq", 20.0);
        // 10 s at 20 Sa/s = 200 samples.
        sink.sample_window(0.0, 10.0, |_t| 400.0);
        assert_eq!(source.drain(), 200);
        let s = Summary::windowed(source.series(), 0.0, 10.0, 1.0, 1.0).unwrap();
        assert!((s.mean - 400.0).abs() < 1e-9);
    }

    #[test]
    fn reset_discards_pending_and_series() {
        let (sink, mut source) = channel("metricq", 20.0);
        sink.send(0.0, 1.0);
        source.drain();
        sink.send(1.0, 2.0); // pending from a stale candidate
        source.reset();
        assert!(source.series().is_empty());
        assert_eq!(source.pending(), 0);
    }

    #[test]
    fn dropped_source_discards_samples() {
        let (sink, source) = channel("metricq", 20.0);
        sink.send(0.0, 1.0);
        drop(source);
        // No consumer left: sends are dropped instead of accumulating.
        sink.send(1.0, 2.0);
        sink.sample_window(0.0, 10.0, |_| 3.0);
        assert!(sink.tx.upgrade().is_none());
        assert_eq!(sink.try_send(2.0, 4.0), Err(SendError::Disconnected));
    }

    #[test]
    fn works_across_threads() {
        let (sink, mut source) = channel("metricq", 20.0);
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                sink.send(i as f64 * 0.05, 350.0 + i as f64);
            }
        });
        handle.join().unwrap();
        assert_eq!(source.drain(), 100);
        assert_eq!(source.series().len(), 100);
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (sink, mut source) = channel_bounded("metricq", 20.0, 3);
        assert_eq!(source.capacity(), Some(3));
        for i in 0..3 {
            assert_eq!(sink.try_send(i as f64, 1.0), Ok(()));
        }
        // Full: the bounded buffer rejects instead of growing.
        assert_eq!(sink.try_send(3.0, 1.0), Err(SendError::Full));
        assert_eq!(source.pending(), 3);
        // Best-effort send drops silently at capacity.
        sink.send(3.0, 1.0);
        assert_eq!(source.pending(), 3);
        // Draining frees the bound.
        assert_eq!(source.drain(), 3);
        assert_eq!(sink.try_send(4.0, 2.0), Ok(()));
        assert_eq!(source.pending(), 1);
    }

    #[test]
    fn try_recv_consumes_one_in_order() {
        let (sink, mut source) = channel("metricq", 20.0);
        sink.send(0.0, 10.0);
        sink.send(1.0, 11.0);
        let first = source.try_recv().expect("first pending sample");
        assert_eq!((first.t_s, first.value), (0.0, 10.0));
        assert_eq!(source.pending(), 1);
        assert_eq!(source.series().len(), 1);
        let second = source.try_recv().expect("second pending sample");
        assert_eq!(second.value, 11.0);
        assert!(source.try_recv().is_none());
        assert_eq!(source.series().len(), 2);
    }

    #[test]
    fn one_sink_many_drains_interleavings_preserve_order_and_counts() {
        // The drain/pending contract under interleaved consumption: no
        // sample is lost or duplicated, and the series stays in send
        // order no matter how drains and try_recvs interleave.
        let (sink, mut source) = channel("metricq", 20.0);
        let mut sent = 0u32;
        let send_n = |sink: &MetricQSink, sent: &mut u32, n: u32| {
            for _ in 0..n {
                sink.send(f64::from(*sent), f64::from(*sent));
                *sent += 1;
            }
        };
        send_n(&sink, &mut sent, 3);
        assert_eq!(source.drain(), 3);
        send_n(&sink, &mut sent, 2);
        assert!(source.try_recv().is_some()); // partial consumption
        send_n(&sink, &mut sent, 4);
        assert_eq!(source.pending(), 5);
        assert_eq!(source.drain(), 5);
        send_n(&sink, &mut sent, 1);
        assert_eq!(source.drain(), 1);
        assert_eq!(source.drain(), 0, "drained queue must report zero");
        assert_eq!(source.pending(), 0);
        // Every sent sample landed exactly once, in order.
        assert_eq!(source.series().len(), sent as usize);
        for (i, s) in source.series().samples().iter().enumerate() {
            assert_eq!(s.value, i as f64, "out-of-order sample at {i}");
        }
    }

    #[test]
    fn bounded_queue_push_wait_unblocks_on_pop() {
        let q = Arc::new(MetricQueue::bounded(1));
        q.try_push(1u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push_wait(2u32));
        // The producer blocks on the full queue until we pop.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(producer.join().unwrap(), Ok(()));
        assert_eq!(q.try_pop(), Some(2));
    }

    #[test]
    fn closed_queue_rejects_pushes_and_drains_pops() {
        let q: MetricQueue<u32> = MetricQueue::unbounded();
        q.try_push(7).unwrap();
        q.close();
        assert!(matches!(q.try_push(8), Err(PushError::Closed(8))));
        assert_eq!(q.push_wait(9), Err(9));
        // Pending items survive the close; then pops report the end.
        assert_eq!(q.pop_wait(), Some(7));
        assert_eq!(q.pop_wait(), None);
        assert_eq!(q.try_pop(), None);
    }
}
