//! Buffered out-of-band metric source (the MetricQ path of Fig. 10).
//!
//! In the paper's setup, the LMG95 power meter samples at 20 Sa/s and
//! streams into MetricQ, "where they are buffered. After a workload
//! candidate finished execution, the values are retrieved and processed by
//! FIRESTARTER". The essential property — samples accumulate while the
//! workload runs and are drained afterwards — is reproduced with an
//! unbounded in-process queue between the measurement side (sink) and
//! the consumer (source/metric).

use crate::metric::Metric;
use crate::series::{Sample, TimeSeries};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Unbounded multi-producer buffer shared by sink and source (a minimal
/// stand-in for a crossbeam channel; crates.io is unavailable offline).
type Buffer = Arc<Mutex<VecDeque<Sample>>>;

/// The producing half: lives with the power meter / measurement server.
/// Holds only a weak handle so a dropped [`MetricQSource`] stops the
/// buffer from growing (the channel-disconnect semantics of the real
/// MetricQ path: samples with no consumer are discarded).
#[derive(Debug, Clone)]
pub struct MetricQSink {
    tx: std::sync::Weak<Mutex<VecDeque<Sample>>>,
    rate_hz: f64,
}

impl MetricQSink {
    /// Sends one sample into the buffer; dropped if the source is gone.
    pub fn send(&self, t_s: f64, value: f64) {
        if let Some(q) = self.tx.upgrade() {
            q.lock()
                .expect("metricq buffer poisoned")
                .push_back(Sample { t_s, value });
        }
    }

    /// Samples a continuous window `[t0, t1)` at the configured rate,
    /// evaluating `f(t)` at each sampling point — the 20 Sa/s LMG95
    /// behaviour.
    pub fn sample_window(&self, t0: f64, t1: f64, mut f: impl FnMut(f64) -> f64) {
        let dt = 1.0 / self.rate_hz;
        let mut t = t0;
        while t < t1 {
            self.send(t, f(t));
            t += dt;
        }
    }

    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }
}

/// The consuming half: a [`Metric`] whose series fills when drained.
pub struct MetricQSource {
    name: String,
    rx: Buffer,
    series: TimeSeries,
}

/// Creates a connected sink/source pair.
///
/// `rate_hz` is the meter sampling rate (the paper uses 20 Sa/s).
pub fn channel(name: impl Into<String>, rate_hz: f64) -> (MetricQSink, MetricQSource) {
    assert!(rate_hz > 0.0);
    let buffer: Buffer = Arc::new(Mutex::new(VecDeque::new()));
    let (tx, rx) = (Arc::downgrade(&buffer), buffer);
    (
        MetricQSink { tx, rate_hz },
        MetricQSource {
            name: name.into(),
            rx,
            series: TimeSeries::new(),
        },
    )
}

impl MetricQSource {
    /// Drains all buffered samples into the local series (called after a
    /// workload candidate finishes). Returns the number of new samples.
    pub fn drain(&mut self) -> usize {
        let drained: Vec<Sample> = {
            let mut q = self.rx.lock().expect("metricq buffer poisoned");
            q.drain(..).collect()
        };
        let n = drained.len();
        for s in drained {
            self.series.push(s.t_s, s.value);
        }
        n
    }

    /// Buffered samples not yet drained.
    pub fn pending(&self) -> usize {
        self.rx.lock().expect("metricq buffer poisoned").len()
    }
}

impl Metric for MetricQSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn unit(&self) -> &str {
        "W"
    }

    fn record(&mut self, _t_s: f64, _value: f64) {
        // Out-of-band source: data arrives through the channel, the
        // runner's tick is just an opportunity to drain.
        self.drain();
    }

    fn series(&self) -> &TimeSeries {
        &self.series
    }

    fn reset(&mut self) {
        // Discard anything buffered from a previous candidate, then clear.
        let _ = self.drain();
        self.series.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Summary;

    #[test]
    fn buffered_then_drained() {
        let (sink, mut source) = channel("metricq", 20.0);
        sink.send(0.0, 300.0);
        sink.send(0.05, 301.0);
        assert_eq!(source.pending(), 2);
        assert!(source.series().is_empty());
        assert_eq!(source.drain(), 2);
        assert_eq!(source.series().len(), 2);
        assert_eq!(source.pending(), 0);
    }

    #[test]
    fn window_sampling_at_rate() {
        let (sink, mut source) = channel("metricq", 20.0);
        // 10 s at 20 Sa/s = 200 samples.
        sink.sample_window(0.0, 10.0, |_t| 400.0);
        assert_eq!(source.drain(), 200);
        let s = Summary::windowed(source.series(), 0.0, 10.0, 1.0, 1.0).unwrap();
        assert!((s.mean - 400.0).abs() < 1e-9);
    }

    #[test]
    fn reset_discards_pending_and_series() {
        let (sink, mut source) = channel("metricq", 20.0);
        sink.send(0.0, 1.0);
        source.drain();
        sink.send(1.0, 2.0); // pending from a stale candidate
        source.reset();
        assert!(source.series().is_empty());
        assert_eq!(source.pending(), 0);
    }

    #[test]
    fn dropped_source_discards_samples() {
        let (sink, source) = channel("metricq", 20.0);
        sink.send(0.0, 1.0);
        drop(source);
        // No consumer left: sends are dropped instead of accumulating.
        sink.send(1.0, 2.0);
        sink.sample_window(0.0, 10.0, |_| 3.0);
        assert!(sink.tx.upgrade().is_none());
    }

    #[test]
    fn works_across_threads() {
        let (sink, mut source) = channel("metricq", 20.0);
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                sink.send(i as f64 * 0.05, 350.0 + i as f64);
            }
        });
        handle.join().unwrap();
        assert_eq!(source.drain(), 100);
        assert_eq!(source.series().len(), 100);
    }
}
