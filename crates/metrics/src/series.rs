//! Time-series storage and windowed statistics.

/// One timestamped measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Simulated time, seconds.
    pub t_s: f64,
    pub value: f64,
}

/// An append-only time series ordered by time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    samples: Vec<Sample>,
}

impl TimeSeries {
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Appends a sample; time must be non-decreasing.
    pub fn push(&mut self, t_s: f64, value: f64) {
        if let Some(last) = self.samples.last() {
            assert!(
                t_s >= last.t_s,
                "samples must be pushed in time order ({t_s} < {})",
                last.t_s
            );
        }
        self.samples.push(Sample { t_s, value });
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    pub fn first_t(&self) -> Option<f64> {
        self.samples.first().map(|s| s.t_s)
    }

    pub fn last_t(&self) -> Option<f64> {
        self.samples.last().map(|s| s.t_s)
    }

    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Samples within `[t0, t1]` inclusive.
    pub fn window(&self, t0: f64, t1: f64) -> impl Iterator<Item = &Sample> {
        self.samples
            .iter()
            .filter(move |s| s.t_s >= t0 && s.t_s <= t1)
    }

    /// Arithmetic mean of values in `[t0, t1]`, or `None` if empty.
    pub fn mean_between(&self, t0: f64, t1: f64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0u64;
        for s in self.window(t0, t1) {
            sum += s.value;
            n += 1;
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Minimum and maximum values in `[t0, t1]`.
    pub fn min_max_between(&self, t0: f64, t1: f64) -> Option<(f64, f64)> {
        let mut it = self.window(t0, t1);
        let first = it.next()?;
        let mut min = first.value;
        let mut max = first.value;
        for s in it {
            min = min.min(s.value);
            max = max.max(s.value);
        }
        Some((min, max))
    }

    /// Standard deviation (population) in `[t0, t1]`.
    pub fn stddev_between(&self, t0: f64, t1: f64) -> Option<f64> {
        let mean = self.mean_between(t0, t1)?;
        let mut sq = 0.0;
        let mut n = 0u64;
        for s in self.window(t0, t1) {
            let d = s.value - mean;
            sq += d * d;
            n += 1;
        }
        Some((sq / n as f64).sqrt())
    }

    /// Empirical CDF over values in 0.1 W-style fixed-width bins: returns
    /// `(bin_upper_edge, cumulative_fraction)` pairs — the Fig. 1 pipeline.
    pub fn cdf(&self, bin_width: f64) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || bin_width <= 0.0 {
            return Vec::new();
        }
        let min = self
            .samples
            .iter()
            .map(|s| s.value)
            .fold(f64::INFINITY, f64::min);
        let max = self
            .samples
            .iter()
            .map(|s| s.value)
            .fold(f64::NEG_INFINITY, f64::max);
        let nbins = (((max - min) / bin_width).floor() as usize + 1).max(1);
        let mut counts = vec![0u64; nbins];
        for s in &self.samples {
            let b = (((s.value - min) / bin_width) as usize).min(nbins - 1);
            counts[b] += 1;
        }
        let total = self.samples.len() as f64;
        let mut acc = 0u64;
        counts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                acc += c;
                (min + bin_width * (i as f64 + 1.0), acc as f64 / total)
            })
            .collect()
    }

    /// Downsamples by averaging consecutive windows of `window_s` seconds
    /// (the Fig. 1 "mean of 60 s" aggregation).
    pub fn aggregate_mean(&self, window_s: f64) -> TimeSeries {
        assert!(window_s > 0.0);
        let mut out = TimeSeries::new();
        let Some(start) = self.first_t() else {
            return out;
        };
        let mut w_start = start;
        let mut sum = 0.0;
        let mut n = 0u64;
        for s in &self.samples {
            while s.t_s >= w_start + window_s {
                if n > 0 {
                    out.push(w_start + window_s / 2.0, sum / n as f64);
                }
                sum = 0.0;
                n = 0;
                w_start += window_s;
            }
            sum += s.value;
            n += 1;
        }
        if n > 0 {
            out.push(w_start + window_s / 2.0, sum / n as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> TimeSeries {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.push(i as f64, i as f64 * 10.0);
        }
        ts
    }

    #[test]
    fn push_and_window() {
        let ts = ramp();
        assert_eq!(ts.len(), 10);
        assert_eq!(ts.window(2.0, 4.0).count(), 3);
        assert_eq!(ts.first_t(), Some(0.0));
        assert_eq!(ts.last_t(), Some(9.0));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new();
        ts.push(1.0, 0.0);
        ts.push(0.5, 0.0);
    }

    #[test]
    fn windowed_statistics() {
        let ts = ramp();
        // values 20,30,40 in [2,4]
        assert_eq!(ts.mean_between(2.0, 4.0), Some(30.0));
        assert_eq!(ts.min_max_between(2.0, 4.0), Some((20.0, 40.0)));
        let sd = ts.stddev_between(2.0, 4.0).unwrap();
        assert!((sd - (200.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert_eq!(ts.mean_between(100.0, 200.0), None);
    }

    #[test]
    fn cdf_reaches_one_and_is_monotone() {
        let mut ts = TimeSeries::new();
        for (i, v) in [50.0, 70.0, 70.0, 90.0, 350.0].iter().enumerate() {
            ts.push(i as f64, *v);
        }
        let cdf = ts.cdf(0.1);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 > w[0].0);
        }
        // Idle shoulder: 60 % of samples at or below 90 W.
        let at_90 = cdf
            .iter()
            .find(|(edge, _)| *edge >= 90.05)
            .expect("bin at 90 W");
        assert!(at_90.1 >= 0.8 - 1e-9, "cdf at 90 = {}", at_90.1);
    }

    #[test]
    fn aggregate_mean_downsamples() {
        // 1 Sa/s for 180 s aggregated to 60 s means ⇒ 3 samples.
        let mut ts = TimeSeries::new();
        for i in 0..180 {
            ts.push(i as f64, if i < 60 { 100.0 } else { 200.0 });
        }
        let agg = ts.aggregate_mean(60.0);
        assert_eq!(agg.len(), 3);
        assert!((agg.samples()[0].value - 100.0).abs() < 1e-9);
        assert!((agg.samples()[1].value - 200.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_handles_gaps() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, 1.0);
        ts.push(500.0, 3.0); // long gap
        let agg = ts.aggregate_mean(60.0);
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn empty_series_edge_cases() {
        let ts = TimeSeries::new();
        assert!(ts.is_empty());
        assert!(ts.cdf(0.1).is_empty());
        assert!(ts.aggregate_mean(1.0).is_empty());
        assert_eq!(ts.mean_between(0.0, 1.0), None);
        assert_eq!(ts.min_max_between(0.0, 1.0), None);
    }
}
