//! The three built-in metrics of §III-C.

use crate::metric::Metric;
use crate::series::TimeSeries;

/// Average power from RAPL-style energy counters.
///
/// "First, measuring the average power consumption over time with the
/// Intel Running Average Power Limit (RAPL) mechanism via the sysfs
/// interface" — the runner feeds this metric the counter value at each
/// tick; the metric differentiates energy into power, handling wrap.
pub struct RaplPowerMetric {
    series: TimeSeries,
    last: Option<(f64, u64)>,
    max_range_uj: u64,
}

impl RaplPowerMetric {
    pub fn new() -> RaplPowerMetric {
        RaplPowerMetric {
            series: TimeSeries::new(),
            last: None,
            max_range_uj: fs2_power::rapl::MAX_ENERGY_RANGE_UJ,
        }
    }

    /// Records a raw energy-counter reading (µJ) at time `t_s`.
    pub fn record_energy_uj(&mut self, t_s: f64, counter_uj: u64) {
        if let Some((t0, c0)) = self.last {
            let dt = t_s - t0;
            if dt > 0.0 {
                let delta = if counter_uj >= c0 {
                    counter_uj - c0
                } else {
                    counter_uj + self.max_range_uj + 1 - c0
                };
                self.series.push(t_s, delta as f64 * 1e-6 / dt);
            }
        }
        self.last = Some((t_s, counter_uj));
    }
}

impl Default for RaplPowerMetric {
    fn default() -> Self {
        Self::new()
    }
}

impl Metric for RaplPowerMetric {
    fn name(&self) -> &str {
        "rapl"
    }

    fn unit(&self) -> &str {
        "W"
    }

    /// The runner may also feed pre-computed watts directly (e.g. when the
    /// node power model is sampled instead of raw counters).
    fn record(&mut self, t_s: f64, watts: f64) {
        self.series.push(t_s, watts);
    }

    fn series(&self) -> &TimeSeries {
        &self.series
    }

    fn reset(&mut self) {
        self.series.clear();
        self.last = None;
    }
}

/// Instructions-per-cycle from hardware counters.
///
/// "Second, measuring instructions per cycle (IPC) using the
/// perf_event_open syscall" — fed with cumulative (instructions, cycles)
/// counter pairs, differentiated per window.
pub struct PerfIpcMetric {
    series: TimeSeries,
    last: Option<(u64, u64)>,
}

impl PerfIpcMetric {
    pub fn new() -> PerfIpcMetric {
        PerfIpcMetric {
            series: TimeSeries::new(),
            last: None,
        }
    }

    /// Records cumulative counters at time `t_s`.
    pub fn record_counters(&mut self, t_s: f64, instructions: u64, cycles: u64) {
        if let Some((i0, c0)) = self.last {
            let di = instructions.saturating_sub(i0);
            let dc = cycles.saturating_sub(c0);
            if dc > 0 {
                self.series.push(t_s, di as f64 / dc as f64);
            }
        }
        self.last = Some((instructions, cycles));
    }
}

impl Default for PerfIpcMetric {
    fn default() -> Self {
        Self::new()
    }
}

impl Metric for PerfIpcMetric {
    fn name(&self) -> &str {
        "perf-ipc"
    }

    fn unit(&self) -> &str {
        "instructions/cycle"
    }

    fn record(&mut self, t_s: f64, ipc: f64) {
        self.series.push(t_s, ipc);
    }

    fn series(&self) -> &TimeSeries {
        &self.series
    }

    fn reset(&mut self) {
        self.series.clear();
        self.last = None;
    }
}

/// IPC estimated from loop counts and an *assumed constant* frequency.
///
/// "Finally, we also integrate an IPC estimation metric, which is valuable
/// if the syscall is not available … this approach is distorted if the
/// frequency of the processor changes during the optimization run." The
/// distortion is reproduced: the estimate divides by the assumed
/// frequency, so under EDC throttling it *under-reports* IPC.
pub struct IpcEstimateMetric {
    series: TimeSeries,
    assumed_freq_mhz: f64,
    insts_per_iteration: f64,
    last: Option<(f64, u64)>,
}

impl IpcEstimateMetric {
    pub fn new(assumed_freq_mhz: f64, insts_per_iteration: f64) -> IpcEstimateMetric {
        assert!(assumed_freq_mhz > 0.0 && insts_per_iteration > 0.0);
        IpcEstimateMetric {
            series: TimeSeries::new(),
            assumed_freq_mhz,
            insts_per_iteration,
            last: None,
        }
    }

    /// Records the cumulative iteration counter at time `t_s`.
    pub fn record_iterations(&mut self, t_s: f64, iterations: u64) {
        if let Some((t0, it0)) = self.last {
            let dt = t_s - t0;
            let di = iterations.saturating_sub(it0);
            if dt > 0.0 {
                let insts = di as f64 * self.insts_per_iteration;
                let assumed_cycles = self.assumed_freq_mhz * 1e6 * dt;
                self.series.push(t_s, insts / assumed_cycles);
            }
        }
        self.last = Some((t_s, iterations));
    }
}

impl Metric for IpcEstimateMetric {
    fn name(&self) -> &str {
        "ipc-estimate"
    }

    fn unit(&self) -> &str {
        "instructions/cycle"
    }

    fn record(&mut self, t_s: f64, value: f64) {
        self.series.push(t_s, value);
    }

    fn series(&self) -> &TimeSeries {
        &self.series
    }

    fn reset(&mut self) {
        self.series.clear();
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Metric;

    #[test]
    fn rapl_differentiates_energy() {
        let mut m = RaplPowerMetric::new();
        m.record_energy_uj(0.0, 0);
        m.record_energy_uj(1.0, 200_000_000); // 200 J in 1 s = 200 W
        m.record_energy_uj(2.0, 300_000_000); // 100 W
        let s = m.series().samples();
        assert_eq!(s.len(), 2);
        assert!((s[0].value - 200.0).abs() < 1e-9);
        assert!((s[1].value - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rapl_handles_counter_wrap() {
        let mut m = RaplPowerMetric::new();
        let near_wrap = fs2_power::rapl::MAX_ENERGY_RANGE_UJ - 50_000_000;
        m.record_energy_uj(0.0, near_wrap);
        m.record_energy_uj(1.0, 50_000_000); // wrapped: +100 J ⇒ ~100 W
        let s = m.series().samples();
        assert_eq!(s.len(), 1);
        assert!((s[0].value - 100.0).abs() < 1.0, "got {}", s[0].value);
    }

    #[test]
    fn perf_ipc_differentiates_counters() {
        let mut m = PerfIpcMetric::new();
        m.record_counters(0.0, 0, 0);
        m.record_counters(1.0, 4_000, 1_000);
        m.record_counters(2.0, 10_000, 3_000);
        let s = m.series().samples();
        assert!((s[0].value - 4.0).abs() < 1e-12);
        assert!((s[1].value - 3.0).abs() < 1e-12);
        assert_eq!(m.name(), "perf-ipc");
    }

    #[test]
    fn ipc_estimate_correct_at_assumed_frequency() {
        // 1000 iterations/s × 2500 insts/iter at an assumed 2500 MHz:
        // IPC = 2.5e6 / 2.5e9 = 1e-3 … pick friendlier numbers:
        let mut m = IpcEstimateMetric::new(1000.0, 4_000.0);
        m.record_iterations(0.0, 0);
        m.record_iterations(1.0, 1_000_000);
        // 4e9 insts / 1e9 assumed cycles = 4.0
        let s = m.series().samples();
        assert!((s[0].value - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ipc_estimate_distorted_by_throttling() {
        // Core actually runs at 800 MHz but we assume 1000 MHz: the core
        // completes 20 % fewer iterations; true IPC is unchanged but the
        // estimate drops by 20 %.
        let mut assumed = IpcEstimateMetric::new(1000.0, 4_000.0);
        assumed.record_iterations(0.0, 0);
        assumed.record_iterations(1.0, 800_000);
        let est = assumed.series().samples()[0].value;
        assert!((est - 3.2).abs() < 1e-9, "distorted estimate = {est}");
    }

    #[test]
    fn reset_clears_state() {
        let mut m = PerfIpcMetric::new();
        m.record_counters(0.0, 0, 0);
        m.record_counters(1.0, 100, 50);
        m.reset();
        assert!(m.series().is_empty());
        // After reset the first record must not produce a sample.
        m.record_counters(2.0, 400, 100);
        assert!(m.series().is_empty());
    }
}
