//! Integration tests for the lint engine: per-rule precision on
//! inline sources, the fixture corpora under `tests/fixtures/`
//! (`workspace/` is intentionally dirty, `clean/` must stay clean),
//! the binary's exit-code contract, and the meta-test pinning the
//! *live* workspace lint-clean.

use fs2_lint::{find_workspace_root, lint_source, lint_workspace, Diagnostic};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("crates/lint sits two levels under the workspace root")
}

fn count(diags: &[Diagnostic], rule: &str) -> usize {
    diags.iter().filter(|d| d.rule == rule).count()
}

// ---- per-rule precision on inline sources ----------------------------

#[test]
fn map_iter_flags_traversal_and_spares_lookup() {
    let traversal = "use std::collections::HashMap;\n\
                     fn f(m: &HashMap<u64, u32>) -> u64 {\n\
                         let mut t = 0;\n\
                         for (k, _) in m { t += k; }\n\
                         t\n\
                     }\n";
    let hits = lint_source("crates/core/src/x.rs", traversal);
    assert_eq!(count(&hits, "map-iter"), 1, "{hits:?}");
    assert_eq!(hits[0].line, 4);

    let lookup = "use std::collections::HashMap;\n\
                  fn f(m: &mut HashMap<u64, u32>) -> u32 {\n\
                      m.insert(1, 2);\n\
                      m.get(&1).copied().unwrap_or(0)\n\
                  }\n";
    assert!(lint_source("crates/core/src/x.rs", lookup).is_empty());

    // Outside the deterministic crates the same traversal is fine.
    assert!(lint_source("crates/metrics/src/x.rs", traversal).is_empty());
}

#[test]
fn wall_clock_respects_module_scope() {
    let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
    assert_eq!(
        count(&lint_source("crates/power/src/x.rs", src), "wall-clock"),
        2,
        "one hit per Instant mention"
    );
    // Bench crates, `::timing` modules, and the CLI may read clocks.
    assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
    assert!(lint_source("crates/metrics/src/timing.rs", src).is_empty());
    assert!(lint_source("src/cli.rs", src).is_empty());
}

#[test]
fn rng_discipline_applies_even_in_tests() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn flaky() {\n        \
               let mut rng = rand::thread_rng();\n    }\n}\n";
    let hits = lint_source("crates/metrics/src/x.rs", src);
    assert_eq!(count(&hits, "rng-discipline"), 1, "{hits:?}");
}

#[test]
fn no_panic_is_scoped_to_the_service_crate() {
    let src = "fn f(line: &str) -> u32 { line.parse().unwrap() }\n";
    let hits = lint_source("crates/service/src/x.rs", src);
    assert_eq!(count(&hits, "no-panic-service"), 1, "{hits:?}");
    assert!(lint_source("crates/cluster/src/x.rs", src).is_empty());

    let graceful = "fn f(line: &str) -> u32 { line.parse().unwrap_or(0) }\n";
    assert!(lint_source("crates/service/src/x.rs", graceful).is_empty());
}

#[test]
fn checked_cast_is_scoped_to_accounting_modules() {
    let narrowing = "fn f(n: u64) -> u32 { n as u32 }\n";
    let hits = lint_source("crates/cluster/src/fleet.rs", narrowing);
    assert_eq!(count(&hits, "checked-cast"), 1, "{hits:?}");
    // Widening is always fine; other cluster modules are out of scope.
    let widening = "fn f(n: u32) -> u64 { n as u64 }\n";
    assert!(lint_source("crates/cluster/src/fleet.rs", widening).is_empty());
    assert!(lint_source("crates/cluster/src/topology.rs", narrowing).is_empty());
}

#[test]
fn safety_comment_accepts_both_shapes() {
    let bare = "fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n";
    let hits = lint_source("crates/sim/src/x.rs", bare);
    assert_eq!(count(&hits, "safety-comment"), 1, "{hits:?}");

    let above = "fn f(p: *const u32) -> u32 {\n    \
                 // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
    assert!(lint_source("crates/sim/src/x.rs", above).is_empty());

    let trailing = "fn f(p: *const u32) -> u32 {\n    \
                    let v = unsafe { *p }; // SAFETY: caller upholds validity.\n    v\n}\n";
    assert!(lint_source("crates/sim/src/x.rs", trailing).is_empty());
}

#[test]
fn suppressions_silence_exactly_one_line() {
    let src = "// fs2-lint: allow(checked-cast) -- bounded upstream\n\
               fn f(n: u64) -> u32 { n as u32 }\n\
               fn g(n: u64) -> u32 { n as u32 }\n";
    let hits = lint_source("crates/cluster/src/fleet.rs", src);
    assert_eq!(count(&hits, "checked-cast"), 1, "{hits:?}");
    assert_eq!(hits[0].line, 3, "the unannotated cast still fires");
}

#[test]
fn malformed_suppressions_are_findings() {
    let src = "// fs2-lint: allow(checked-cast)\nfn f(n: u64) -> u32 { n as u32 }\n";
    let hits = lint_source("crates/cluster/src/fleet.rs", src);
    assert_eq!(
        count(&hits, "suppression"),
        1,
        "reasonless annotation: {hits:?}"
    );
    assert_eq!(
        count(&hits, "checked-cast"),
        1,
        "a reasonless annotation suppresses nothing"
    );
}

#[test]
fn rule_shaped_text_in_literals_and_comments_is_inert() {
    let src = "fn f() -> String {\n    \
               let a = \"for (k, v) in &counts { Instant::now() }\";\n    \
               let b = r#\"thread_rng() and x as u32 and .unwrap()\"#;\n    \
               /* SystemTime::now(), panic!(\"boom\"), unsafe { *p } */\n    \
               format!(\"{a}{b}\")\n}\n";
    // The service + accounting path is the strictest scope available.
    assert!(lint_source("crates/service/src/admission.rs", src).is_empty());
    assert!(lint_source("crates/core/src/x.rs", src).is_empty());
}

// ---- fixture corpora -------------------------------------------------

#[test]
fn dirty_fixture_tree_fires_every_rule() {
    let report = lint_workspace(&fixture("workspace")).expect("fixture tree walks");
    assert_eq!(report.files_scanned, 7);
    let d = &report.diagnostics;
    assert_eq!(count(d, "map-iter"), 3, "{d:#?}");
    assert_eq!(count(d, "wall-clock"), 5, "{d:#?}");
    assert_eq!(count(d, "rng-discipline"), 3, "{d:#?}");
    assert_eq!(count(d, "no-panic-service"), 8, "{d:#?}");
    assert_eq!(count(d, "checked-cast"), 2, "{d:#?}");
    assert_eq!(count(d, "safety-comment"), 1, "{d:#?}");
    assert_eq!(count(d, "suppression"), 2, "{d:#?}");
    // Findings land in the file(s) staged for that rule.
    let staged: [(&str, &[&str]); 7] = [
        ("map-iter", &["crates/core/src/maps.rs"]),
        ("wall-clock", &["crates/calib/src/clock.rs"]),
        ("rng-discipline", &["crates/tuning/src/rng.rs"]),
        (
            "no-panic-service",
            &[
                "crates/service/src/handler.rs",
                "crates/service/src/supervisor.rs",
            ],
        ),
        ("checked-cast", &["crates/cluster/src/fleet.rs"]),
        ("safety-comment", &["crates/sim/src/exec.rs"]),
        ("suppression", &["crates/sim/src/exec.rs"]),
    ];
    for (rule, paths) in staged {
        assert!(
            d.iter()
                .filter(|x| x.rule == rule)
                .all(|x| paths.contains(&x.path.as_str())),
            "{rule} findings strayed from {paths:?}: {d:#?}"
        );
    }
    // The supervision twin fires each panic shape exactly once.
    assert_eq!(
        d.iter()
            .filter(|x| x.path == "crates/service/src/supervisor.rs")
            .count(),
        4,
        "{d:#?}"
    );
}

#[test]
fn clean_fixture_tree_is_clean() {
    let report = lint_workspace(&fixture("clean")).expect("fixture tree walks");
    assert_eq!(report.files_scanned, 6);
    assert!(
        report.is_clean(),
        "clean fixtures must not fire: {:#?}",
        report.diagnostics
    );
}

// ---- binary exit-code contract ---------------------------------------

#[test]
fn binary_exits_nonzero_on_findings() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_fs2-lint"))
        .arg(fixture("workspace"))
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "dirty tree must fail the lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("finding(s) across"), "{stdout}");
    assert!(
        stdout.contains("crates/core/src/maps.rs:"),
        "diagnostics print as file:line rule: message\n{stdout}"
    );
}

#[test]
fn binary_exits_zero_on_a_clean_tree() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_fs2-lint"))
        .arg(fixture("clean"))
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("fs2-lint: clean"), "{stdout}");
}

// ---- the meta-test: the live workspace stays lint-clean --------------

#[test]
fn live_workspace_is_lint_clean() {
    let root = repo_root();
    assert!(
        find_workspace_root(&root.join("crates/lint")) == Some(root.clone()),
        "root discovery should land on the workspace manifest"
    );
    let report = lint_workspace(&root).expect("workspace walks");
    assert!(
        report.files_scanned >= 100,
        "suspiciously few files scanned ({}): wrong root?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "the live workspace must stay lint-clean; fix or annotate:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
