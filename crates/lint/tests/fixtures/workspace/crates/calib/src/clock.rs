//! Fixture: wall-clock positives. `fs2-calib::clock` is neither a
//! bench, a `::timing` module, nor the CLI, so both reads are flagged.

use std::time::{Instant, SystemTime};

pub fn stamp() -> u64 {
    // Positive: Instant in a deterministic calibration path.
    let t0 = Instant::now();
    let _ = t0.elapsed();
    // Positive: SystemTime anywhere outside bench/timing/CLI.
    match SystemTime::now().duration_since(SystemTime::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
