//! Fixture: no-panic-service positives. `fs2-service::handler` is on
//! the request path; every panic site below must be flagged.

pub fn handle(line: &str) -> String {
    // Positive: unwrap on peer-controlled input.
    let n: u32 = line.trim().parse().unwrap();
    // Positive: expect on peer-controlled input.
    let first = line.split(',').next().expect("nonempty split");
    if n > 1000 {
        // Positive: panic! reachable from a request.
        panic!("request too large: {n}");
    }
    match first {
        "run" => format!("ok {n}"),
        // Positive: unreachable! on a peer-chosen arm.
        _ => unreachable!("unknown verb"),
    }
}
