//! Fixture: no-panic-service positives in supervision/chaos shapes.
//! Worker respawn and fault-injection code runs on the request path
//! too — a panic here takes the supervisor down with the worker.

use std::panic::{catch_unwind, AssertUnwindSafe};

pub fn reap(handles: Vec<std::thread::JoinHandle<()>>) {
    for h in handles {
        // Positive: joining a worker that died panicking re-raises the
        // panic into the supervisor.
        h.join().unwrap();
    }
}

pub fn run_shard(task: impl FnOnce() -> u64) -> u64 {
    // Positive: expect on a caught panic forwards it instead of
    // converting it into a typed shard error.
    catch_unwind(AssertUnwindSafe(task)).expect("shard task panicked")
}

pub fn inject_fault(request_idx: u64, period: u64) {
    if period > 0 && request_idx % period == 0 {
        // Positive: an unannotated injected panic — chaos sites must
        // carry an explicit fs2-lint allow with a reason.
        panic!("chaos: injected fault at request {request_idx}");
    }
}

pub fn respawn_slot(slot: Option<usize>) -> usize {
    match slot {
        Some(s) => s,
        // Positive: todo! left in the respawn path.
        None => todo!("pick a slot for the respawned worker"),
    }
}
