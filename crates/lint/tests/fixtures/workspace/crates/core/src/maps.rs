//! Fixture: map-iter positives. Module path `fs2-core::maps` is a
//! deterministic crate, so every traversal below must be flagged.

use std::collections::{HashMap, HashSet};

pub fn tally(samples: &[u64]) -> u64 {
    let mut counts: HashMap<u64, u32> = HashMap::new();
    for &s in samples {
        *counts.entry(s).or_insert(0) += 1;
    }
    let mut total = 0;
    // Positive: `for … in` over a known HashMap binding.
    for (k, v) in &counts {
        total += k * u64::from(*v);
    }
    total
}

pub fn first_key(counts: &HashMap<u64, u32>) -> Option<u64> {
    // Positive: .keys() is a traversal regardless of receiver name.
    counts.keys().next().copied()
}

pub fn drain_all(seen: &mut HashSet<u64>) -> Vec<u64> {
    // Positive: .drain() on a binding declared as a HashSet.
    seen.drain().collect()
}
