//! Fixture: rng-discipline positives. Entropy seeding is forbidden
//! everywhere — tuning sweeps must replay bit-for-bit from a config
//! seed.

pub fn seed_sources() -> u64 {
    // Positive: from_entropy.
    let rng = SmallRng::from_entropy();
    // Positive: thread_rng.
    let local = thread_rng();
    // Positive: OsRng named as a source.
    let os = OsRng;
    mix(rng, local, os)
}
