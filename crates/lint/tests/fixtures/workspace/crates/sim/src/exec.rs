//! Fixture: safety-comment and suppression positives. The unsafe
//! block below has no safety comment, and both annotations are
//! malformed (unknown rule; missing reason).

pub fn lanes(ptr: *const u32) -> u32 {
    let widened = 1;
    // Positive: unsafe block with no preceding safety comment.
    let v = unsafe { *ptr };
    v + widened
}

// fs2-lint: allow(not-a-rule) -- the rule name is not one the engine knows
pub fn bogus_rule() {}

// fs2-lint: allow(map-iter)
pub fn missing_reason() {}
