//! Fixture: checked-cast positives. `fs2-cluster::fleet` is a node/
//! sample accounting module; the truncating casts below must be
//! flagged.

pub fn shard_count(total_nodes: u64, shards: usize) -> u32 {
    // Positive: u64 -> u32 silently truncates at request scale.
    let n = total_nodes as u32;
    // Positive: usize -> u16.
    let s = shards as u16;
    n / u32::from(s.max(1))
}
