//! Fixture: map-iter negatives and lexer edge cases. Everything in
//! this file must lint clean even though the text is littered with
//! rule-shaped content inside strings, comments, and test modules.

use std::collections::{BTreeMap, HashMap};

pub fn lookup(cache: &HashMap<u64, u32>, key: u64) -> u32 {
    // Negative: point lookups on a HashMap are fine.
    cache.get(&key).copied().unwrap_or_default()
}

pub fn ordered_total(ranks: &BTreeMap<u64, u32>) -> u64 {
    // Negative: BTreeMap iterates in key order — deterministic.
    let mut total = 0;
    for (k, v) in ranks {
        total += k * u64::from(*v);
    }
    total
}

pub fn vec_iter(samples: &[u64]) -> u64 {
    // Negative: slice iteration is ordered.
    samples.iter().sum()
}

pub fn sorted_keys(cache: &HashMap<u64, u32>) -> Vec<u64> {
    // fs2-lint: allow(map-iter) -- keys are collected and sorted before use
    let mut keys: Vec<u64> = cache.keys().copied().collect();
    keys.sort_unstable();
    keys
}

pub fn literals_do_not_fire() -> String {
    // Negative: rule-shaped text inside string literals is inert.
    let a = "for (k, v) in &counts { counts.keys() }";
    let b = r#"Instant::now() and thread_rng() and x as u32 and .unwrap()"#;
    /* Negative: block comments are inert too — even /* nested */ ones
    holding SystemTime::now(), panic!("boom"), and unsafe { *p }. */
    let c = '\u{1F600}';
    let lifetime_not_char: &'static str = "still clean";
    format!("{a}{b}{c}{lifetime_not_char}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt_from_map_iter() {
        let mut counts: HashMap<u64, u32> = HashMap::new();
        counts.insert(1, 2);
        // Negative: map traversal inside #[cfg(test)] is exempt.
        let total: u32 = counts.values().sum();
        assert_eq!(total, 2);
    }
}
