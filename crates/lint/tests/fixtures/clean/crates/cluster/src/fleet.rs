//! Fixture: checked-cast negatives in an accounting module. Widening
//! casts, checked conversions, and annotated hot-loop truncations all
//! lint clean.

pub fn widen(nodes: u32, samples: u32) -> u64 {
    // Negative: widening casts never truncate.
    let budget = nodes as u64 * samples as u64;
    let idx = nodes as usize;
    budget + idx as u64
}

pub fn checked(total: u64) -> Result<u32, std::num::TryFromIntError> {
    // Negative: try_from is the sanctioned conversion.
    u32::try_from(total)
}

pub fn hot_loop(states: &mut Vec<u16>, class_index: usize) {
    // fs2-lint: allow(checked-cast) -- class index is validated against a tiny catalogue; hot per-sample loop
    states.push(class_index as u16);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_truncate() {
        // Negative: narrowing casts in tests are exempt.
        let small = 40_000_u64 as u16;
        assert_eq!(small, 40_000 % 65_536);
    }
}
