//! Fixture: wall-clock negatives. `fs2-bench::timing` is doubly
//! exempt (a bench crate *and* a `::timing` module), so clock reads
//! here lint clean.

use std::time::{Duration, Instant, SystemTime};

pub fn measure<F: FnOnce()>(f: F) -> Duration {
    // Negative: benches exist to read the clock.
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

pub fn stamp() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
