//! Fixture: no-panic-service negatives in supervision/chaos shapes.
//! The same machinery as the dirty `supervisor.rs` twin, written the
//! way the live service must: caught panics become typed errors, and
//! deliberate chaos panics carry an annotated reason.

use std::panic::{catch_unwind, AssertUnwindSafe};

pub fn reap(handles: Vec<std::thread::JoinHandle<()>>) -> usize {
    let mut dead = 0;
    for h in handles {
        // Negative: a worker that died panicking is counted, not
        // re-raised into the supervisor.
        if h.join().is_err() {
            dead += 1;
        }
    }
    dead
}

pub fn run_shard(task: impl FnOnce() -> u64) -> Result<u64, String> {
    // Negative: a caught panic becomes a typed shard error.
    catch_unwind(AssertUnwindSafe(task)).map_err(|_| "shard task panicked".to_string())
}

pub fn inject_fault(request_idx: u64, period: u64) {
    if period > 0 && request_idx % period == 0 {
        // fs2-lint: allow(no-panic-service) -- deterministic chaos injection; caught by the pool
        panic!("chaos: injected fault at request {request_idx}");
    }
}

pub fn respawn_slot(slot: Option<usize>, pool_size: usize) -> usize {
    // Negative: a missing slot degrades to the last seat instead of
    // aborting the respawn.
    slot.unwrap_or(pool_size.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_shard_errors_round_trip() {
        assert_eq!(run_shard(|| 9).unwrap(), 9);
        assert!(run_shard(|| panic!("boom")).is_err());
    }
}
