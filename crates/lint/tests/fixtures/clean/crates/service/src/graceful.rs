//! Fixture: no-panic-service negatives. Fallible handling and
//! annotated invariants in a service module must lint clean.

pub fn parse(line: &str) -> Result<u32, String> {
    // Negative: typed-error handling, no panic potential.
    line.trim()
        .parse::<u32>()
        .map_err(|e| format!("bad count: {e}"))
}

pub fn with_default(line: &str) -> u32 {
    // Negative: unwrap_or / unwrap_or_else / unwrap_or_default are
    // not panics.
    let a = line.parse::<u32>().unwrap_or(0);
    let b = line.parse::<u32>().unwrap_or_else(|_| 1);
    let c = line.parse::<u32>().unwrap_or_default();
    a + b + c
}

pub fn stats(counter: &std::sync::Mutex<u64>) -> u64 {
    // fs2-lint: allow(no-panic-service) -- lock poisoning, not peer input
    *counter.lock().expect("counter poisoned")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_unwrap() {
        // Negative: unwrap in tests is the normal assertion idiom.
        assert_eq!("7".parse::<u32>().unwrap(), 7);
        assert_eq!(parse("7").unwrap(), 7);
    }
}
