//! Fixture: safety-comment negatives. Documented unsafe blocks in
//! both accepted shapes, plus rule-shaped text that must stay inert.

pub fn read_line_above(ptr: *const u32) -> u32 {
    // SAFETY: caller guarantees `ptr` is valid and aligned for reads.
    unsafe { *ptr }
}

pub fn read_trailing(ptr: *const u32) -> u32 {
    let v = unsafe { *ptr }; // SAFETY: caller upholds validity.
    v
}

pub fn inert_text() -> &'static str {
    // Negative: "unsafe {" inside a string is not an unsafe block.
    "unsafe { *ptr } without a net"
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn test_code_may_read_the_clock() {
        // Negative: wall-clock reads inside tests are exempt.
        let t0 = Instant::now();
        assert!(t0.elapsed().as_secs() < 3600);
    }
}
