//! The six workspace rules, encoding invariants every PR since the
//! engine layer has staked correctness on.
//!
//! Each rule is a token-sequence matcher over [`crate::lexer`] output,
//! scoped by module path (see [`crate::scope`]). The matchers are
//! deliberately heuristic — there is no type inference here — and are
//! tuned to have **no false positives on the live workspace** (the
//! meta-test pins that) while catching the classic regression shapes:
//! a `for` loop over a `HashMap`, an entropy-seeded RNG, a wall-clock
//! read in a deterministic path, a peer-reachable `unwrap`, a
//! truncating `as` cast in sample accounting, an uncommented `unsafe`.

use crate::lexer::{Lexed, Token, TokenKind};
use crate::scope::{suppression_findings, suppressions, test_regions, TestRegions};
use crate::Diagnostic;

/// Static metadata for one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    pub name: &'static str,
    pub summary: &'static str,
}

/// Every rule the engine knows, in diagnostic order. `suppression` is
/// the meta-rule for malformed `fs2-lint:` annotations.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "map-iter",
        summary: "no order-dependent HashMap/HashSet traversal in deterministic crates \
                  (core, sim, cluster, calib, tuning); lookup is fine, iteration is not",
    },
    RuleInfo {
        name: "wall-clock",
        summary: "Instant::now/SystemTime only in bench, timing, or CLI modules",
    },
    RuleInfo {
        name: "rng-discipline",
        summary: "no entropy seeding (from_entropy/thread_rng/OsRng/getrandom); \
                  seeds flow from config",
    },
    RuleInfo {
        name: "no-panic-service",
        summary: "unwrap/expect/panic!/unreachable!/todo! forbidden in fs2-service \
                  request paths; failures must become typed replies",
    },
    RuleInfo {
        name: "checked-cast",
        summary: "truncating `as` casts (to ≤ 32-bit ints) forbidden in node/sample \
                  accounting modules; use try_from or widen the intermediate",
    },
    RuleInfo {
        name: "safety-comment",
        summary: "every unsafe block must be preceded by a // SAFETY: comment",
    },
    RuleInfo {
        name: "suppression",
        summary: "fs2-lint annotations must be well-formed: allow(<known-rule>) -- <reason>",
    },
];

/// The deterministic crates: fleet output must be bitwise-pure in
/// `(seed, config)` everywhere under these roots.
fn deterministic_module(m: &str) -> bool {
    [
        "fs2-core",
        "fs2-sim",
        "fs2-cluster",
        "fs2-calib",
        "fs2-tuning",
    ]
    .iter()
    .any(|c| m == *c || m.starts_with(&format!("{c}::")))
}

/// Modules allowed to read wall clocks: benchmarks, the shared timing
/// harness, and the CLI front-end (which prints elapsed times).
fn wall_clock_allowed(m: &str) -> bool {
    m.starts_with("fs2-bench") || m.starts_with("firestarter2") || m.ends_with("::timing")
}

/// The node/sample accounting modules where a silent truncation has
/// already bitten once (the PR 7 `taurus_haswell_scaled` u32 overflow).
fn accounting_module(m: &str) -> bool {
    matches!(
        m,
        "fs2-cluster::fleet"
            | "fs2-cluster::budget"
            | "fs2-service::admission"
            | "fs2-service::proto"
    )
}

/// The fleet-service request path: every module of `fs2-service` is
/// reachable from `handle_line`, so a panic anywhere kills a worker
/// thread instead of producing a failure reply.
fn service_module(m: &str) -> bool {
    m == "fs2-service" || m.starts_with("fs2-service::")
}

struct Ctx<'a> {
    path: &'a str,
    module: String,
    tokens: &'a [Token],
    tests: TestRegions,
    diags: Vec<Diagnostic>,
}

impl Ctx<'_> {
    fn emit(&mut self, line: u32, rule: &'static str, message: String) {
        self.diags.push(Diagnostic {
            path: self.path.to_string(),
            line,
            rule,
            message,
        });
    }

    fn in_tests(&self, line: u32) -> bool {
        self.tests.contains(line)
    }
}

/// Runs every rule over one lexed file. `path` is workspace-relative
/// with `/` separators; it drives the module scoping.
pub fn check_file(path: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let sup = suppressions(lexed);
    let mut ctx = Ctx {
        path,
        module: crate::scope::module_path_of(path),
        tokens: &lexed.tokens,
        tests: test_regions(&lexed.tokens),
        diags: suppression_findings(path, &sup),
    };
    map_iter(&mut ctx);
    wall_clock(&mut ctx);
    rng_discipline(&mut ctx);
    no_panic_service(&mut ctx);
    checked_cast(&mut ctx);
    safety_comment(&mut ctx, lexed);
    ctx.diags
        .into_iter()
        .filter(|d| d.rule == "suppression" || !sup.allows(d.rule, d.line))
        .collect()
}

/// Identifiers bound to a `HashMap`/`HashSet` in this file: struct
/// fields and `let`/parameter bindings whose declared type names the
/// map (`cache: &mut HashMap<…>`), plus `let name = HashMap::new()`.
fn hash_container_names(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk left through type position (idents, ::, <, &, mut, …)
        // until the `:` or `=` that introduced it.
        let mut j = i;
        while j > 0 {
            j -= 1;
            let tk = &tokens[j];
            let type_ish = matches!(tk.kind, TokenKind::Ident | TokenKind::Lifetime)
                && !tk.is_ident("let")
                || tk.is_punct('<')
                || tk.is_punct('&')
                || tk.is_punct(',')
                || tk.is_punct('(')
                || tk.is_punct(':') && j > 0 && tokens[j - 1].is_punct(':')
                || tk.is_punct(':') && tokens.get(j + 1).is_some_and(|n| n.is_punct(':'));
            if type_ish {
                continue;
            }
            if (tk.is_punct(':') || tk.is_punct('='))
                && j > 0
                && tokens[j - 1].kind == TokenKind::Ident
            {
                names.push(tokens[j - 1].text.clone());
            }
            break;
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Rule 1: `map-iter`. Iteration order over std's hashed containers
/// is seeded per-process; any traversal in a deterministic crate is a
/// determinism bug waiting for a tie to break the wrong way.
fn map_iter(ctx: &mut Ctx) {
    if !deterministic_module(&ctx.module) {
        return;
    }
    let names = hash_container_names(ctx.tokens);
    let toks = ctx.tokens;
    let mut hits: Vec<(u32, String)> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || ctx.in_tests(t.line) {
            continue;
        }
        let after_dot = i > 0 && toks[i - 1].is_punct('.');
        let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if after_dot && called {
            // Methods that *are* the traversal, whatever the receiver:
            // only maps have keys()/values().
            if matches!(
                t.text.as_str(),
                "keys" | "values" | "values_mut" | "into_keys" | "into_values"
            ) {
                hits.push((
                    t.line,
                    format!(
                        ".{}() traverses a hashed container in unstable order",
                        t.text
                    ),
                ));
                continue;
            }
            // Generic traversals: flag only when the receiver is a
            // known HashMap/HashSet binding from this file.
            if matches!(
                t.text.as_str(),
                "iter" | "iter_mut" | "into_iter" | "drain" | "retain"
            ) && i >= 2
                && toks[i - 2].kind == TokenKind::Ident
                && names.contains(&toks[i - 2].text)
            {
                hits.push((
                    t.line,
                    format!(
                        "`{}.{}()` iterates a HashMap/HashSet; use BTreeMap or sort first",
                        toks[i - 2].text,
                        t.text
                    ),
                ));
                continue;
            }
        }
        // `for … in [&[mut]] name` where name is a map binding.
        if t.is_ident("in") {
            let mut k = i + 1;
            while toks
                .get(k)
                .is_some_and(|n| n.is_punct('&') || n.is_ident("mut"))
            {
                k += 1;
            }
            if let Some(n) = toks.get(k) {
                let ends_stmt = toks
                    .get(k + 1)
                    .is_none_or(|x| x.is_punct('{') || x.is_punct('.'));
                if n.kind == TokenKind::Ident && names.contains(&n.text) && ends_stmt {
                    hits.push((
                        t.line,
                        format!(
                            "`for … in {}` iterates a HashMap/HashSet in unstable order",
                            n.text
                        ),
                    ));
                }
            }
        }
    }
    for (line, msg) in hits {
        ctx.emit(line, "map-iter", msg);
    }
}

/// Rule 2: `wall-clock`. Time reads make output depend on the host's
/// clock; only benches, the timing harness, and the CLI may look.
fn wall_clock(ctx: &mut Ctx) {
    if wall_clock_allowed(&ctx.module) {
        return;
    }
    let mut hits = Vec::new();
    for t in ctx.tokens {
        if ctx.in_tests(t.line) {
            continue;
        }
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            hits.push((
                t.line,
                format!(
                    "{} read outside bench/timing/CLI modules breaks (seed, config) purity",
                    t.text
                ),
            ));
        }
    }
    for (line, msg) in hits {
        ctx.emit(line, "wall-clock", msg);
    }
}

/// Rule 3: `rng-discipline`. Every random stream in the workspace is
/// seeded from config; entropy seeding anywhere (tests included)
/// makes reruns unreproducible.
fn rng_discipline(ctx: &mut Ctx) {
    let mut hits = Vec::new();
    for t in ctx.tokens {
        if matches!(
            t.text.as_str(),
            "from_entropy" | "thread_rng" | "OsRng" | "getrandom"
        ) && t.kind == TokenKind::Ident
        {
            hits.push((
                t.line,
                format!(
                    "`{}` seeds from entropy; thread seeds through the config instead",
                    t.text
                ),
            ));
        }
    }
    for (line, msg) in hits {
        ctx.emit(line, "rng-discipline", msg);
    }
}

/// Rule 4: `no-panic-service`. A panic in `fs2-service` kills a
/// worker/connection thread; peers must get typed failure replies.
fn no_panic_service(ctx: &mut Ctx) {
    if !service_module(&ctx.module) {
        return;
    }
    let toks = ctx.tokens;
    let mut hits = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || ctx.in_tests(t.line) {
            continue;
        }
        let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        let after_dot = i > 0 && toks[i - 1].is_punct('.');
        if after_dot && called && matches!(t.text.as_str(), "unwrap" | "expect") {
            hits.push((
                t.line,
                format!(
                    ".{}() in a service request path panics a worker; return a typed error",
                    t.text
                ),
            ));
        }
        let bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if bang
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
        {
            hits.push((
                t.line,
                format!(
                    "{}! in a service request path; return a typed error instead",
                    t.text
                ),
            ));
        }
    }
    for (line, msg) in hits {
        ctx.emit(line, "no-panic-service", msg);
    }
}

/// Rule 5: `checked-cast`. In accounting modules an `as` cast to a
/// ≤ 32-bit integer silently truncates at request scale; `try_from`
/// (or a 64-bit intermediate) makes the overflow a typed error.
fn checked_cast(ctx: &mut Ctx) {
    if !accounting_module(&ctx.module) {
        return;
    }
    let toks = ctx.tokens;
    let mut hits = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("as") || ctx.in_tests(t.line) {
            continue;
        }
        if let Some(target) = toks.get(i + 1) {
            if matches!(
                target.text.as_str(),
                "u8" | "u16" | "u32" | "i8" | "i16" | "i32"
            ) && target.kind == TokenKind::Ident
            {
                hits.push((
                    t.line,
                    format!(
                        "`as {}` truncates silently at request scale; use {}::try_from",
                        target.text, target.text
                    ),
                ));
            }
        }
    }
    for (line, msg) in hits {
        ctx.emit(line, "checked-cast", msg);
    }
}

/// Rule 6: `safety-comment`. Every `unsafe {` block needs a
/// `// SAFETY:` comment between the previous statement and the block.
fn safety_comment(ctx: &mut Ctx, lexed: &Lexed) {
    let toks = ctx.tokens;
    let mut hits = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") || !toks.get(i + 1).is_some_and(|n| n.is_punct('{')) {
            continue;
        }
        // The nearest code line strictly above the block: a SAFETY
        // comment must sit between it and the `unsafe` keyword (or on
        // one of those two lines).
        let prev_code_line = toks[..i]
            .iter()
            .rev()
            .map(|p| p.line)
            .find(|&l| l < t.line)
            .unwrap_or(0);
        let documented = lexed.comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.last_line >= prev_code_line && c.first_line <= t.line
        });
        if !documented {
            hits.push((
                t.line,
                "unsafe block without a preceding // SAFETY: comment".to_string(),
            ));
        }
    }
    for (line, msg) in hits {
        ctx.emit(line, "safety-comment", msg);
    }
}
