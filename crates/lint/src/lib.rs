//! `fs2-lint` — workspace-specific determinism & robustness lints.
//!
//! Every layer of this workspace stakes correctness on one invariant:
//! fleet output is bitwise-deterministic in `(seed, config)` and
//! invariant across thread counts. The runtime golden suites
//! (`exec_parity`, the fleet-service bitwise diffs, `calib_props`)
//! enforce that after the fact; this crate catches the classic
//! failure *sources* at the source level, before a golden test runs:
//!
//! * `map-iter` — HashMap/HashSet traversal in deterministic crates
//! * `wall-clock` — `Instant::now`/`SystemTime` outside bench/CLI
//! * `rng-discipline` — entropy-seeded RNGs
//! * `no-panic-service` — peer-reachable panics in `fs2-service`
//! * `checked-cast` — truncating casts in node/sample accounting
//! * `safety-comment` — `unsafe` blocks without `// SAFETY:`
//!
//! Like `vendor/rand`, the crate is dependency-free: a hand-rolled
//! lexer ([`lexer`]) feeds token-sequence rules ([`rules`]) with
//! module-path scoping and inline suppression ([`scope`]). The binary
//! walks the workspace (skipping `vendor/`, `target/`, and fixture
//! trees) and exits nonzero on findings; CI runs it as its own job.
//!
//! Suppression syntax, inline at the offending line:
//!
//! ```text
//! // fs2-lint: allow(checked-cast) -- bounded by JobMix validation; hot loop
//! ```

pub mod lexer;
pub mod rules;
pub mod scope;

use std::fmt;
use std::path::{Path, PathBuf};

/// One finding: `file:line rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Lints one file's source. `rel_path` must be workspace-relative
/// (e.g. `crates/cluster/src/fleet.rs`): it selects which rules apply.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    rules::check_file(rel_path, &lexer::lex(source))
}

/// Result of linting a tree: how much was scanned and what was found.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Directories never descended into: build output, vendored shims
/// (out of policy scope), VCS metadata, and lint fixture corpora
/// (which contain intentional violations).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Walks every `.rs` file under `root` (skipping `SKIP_DIRS`) and
/// lints each against the full rule set. Diagnostics come back sorted
/// by `(path, line, rule)` so output is stable across filesystems.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for file in files {
        let source = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        report.diagnostics.extend(lint_source(&rel, &source));
        report.files_scanned += 1;
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Ascends from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]` — how the binary finds the tree to lint
/// when invoked via `cargo run -p fs2-lint` from anywhere inside it.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
