//! Module-path scoping, `#[cfg(test)]` region detection, and inline
//! suppression parsing.
//!
//! Rules are scoped by *module path* (`fs2-cluster::fleet`), derived
//! from the file's workspace-relative path, so a rule like `map-iter`
//! can apply to the deterministic crates and nowhere else. Test
//! modules and `#[test]` functions are exempt from most rules — tests
//! may unwrap, cast, and iterate however they like — while
//! `safety-comment` and `rng-discipline` stay on everywhere (an
//! entropy-seeded test is flaky by construction).
//!
//! Suppression syntax, modeled on clippy's `#[allow]` but carried in
//! a comment so it needs no proc-macro support:
//!
//! ```text
//! // fs2-lint: allow(checked-cast) -- class index is < 6 by JobMix validation
//! ```
//!
//! The annotation suppresses the named rule(s) on the same line, or —
//! when the comment stands alone on its line — on the next line that
//! holds code. The `-- <reason>` part is mandatory: an unexplained
//! exemption is itself a finding (`suppression`).

use crate::lexer::{Comment, Lexed, Token};
use crate::rules::RULES;
use crate::Diagnostic;

/// Derives a module path like `fs2-cluster::fleet` from a
/// workspace-relative file path like `crates/cluster/src/fleet.rs`.
///
/// Top-level `src/` maps to the root `firestarter2` crate (the CLI);
/// integration tests and examples keep a `tests::` / `examples::`
/// prefix so scoped rules can tell them apart from crate sources.
pub fn module_path_of(rel_path: &str) -> String {
    let p = rel_path.trim_end_matches(".rs");
    let parts: Vec<&str> = p.split('/').collect();
    match parts.as_slice() {
        ["crates", krate, "src", rest @ ..] => {
            let mut out = format!("fs2-{krate}");
            for seg in rest {
                if *seg != "lib" && *seg != "mod" {
                    out.push_str("::");
                    out.push_str(seg);
                }
            }
            out
        }
        ["src", rest @ ..] => {
            let mut out = "firestarter2".to_string();
            for seg in rest {
                if *seg != "lib" && *seg != "main" {
                    out.push_str("::");
                    out.push_str(seg);
                }
            }
            out
        }
        ["vendor", krate, ..] => format!("vendor::{krate}"),
        [head, rest @ ..] => {
            let mut out = (*head).to_string();
            for seg in rest {
                out.push_str("::");
                out.push_str(seg);
            }
            out
        }
        [] => String::new(),
    }
}

/// Inclusive line ranges covered by `#[cfg(test)]` modules and
/// `#[test]` functions.
#[derive(Debug, Default)]
pub struct TestRegions {
    ranges: Vec<(u32, u32)>,
}

impl TestRegions {
    pub fn contains(&self, line: u32) -> bool {
        self.ranges.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    }
}

fn attr_is_cfg_test(inner: &[Token]) -> bool {
    // #[cfg(test)] / #[cfg(all(test, …))] — any `test` ident inside a
    // `cfg` attribute counts.
    inner.first().is_some_and(|t| t.is_ident("cfg")) && inner.iter().any(|t| t.is_ident("test"))
}

fn attr_is_test(inner: &[Token]) -> bool {
    inner.len() == 1 && inner[0].is_ident("test")
}

/// Finds `#[cfg(test)]`/`#[test]` attributes and brace-matches the
/// item that follows them. Token-level brace matching is exact here
/// because strings and comments were already consumed by the lexer.
pub fn test_regions(tokens: &[Token]) -> TestRegions {
    let mut regions = TestRegions::default();
    let mut i = 0;
    while i + 1 < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_line = tokens[i].line;
        // Collect the attribute body up to its matching `]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut inner = Vec::new();
        while j < tokens.len() {
            if tokens[j].is_punct('[') {
                depth += 1;
            } else if tokens[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1 {
                inner.push(tokens[j].clone());
            }
            j += 1;
        }
        if j >= tokens.len() || !(attr_is_cfg_test(&inner) || attr_is_test(&inner)) {
            i = j.max(i + 1);
            continue;
        }
        // Skip any further attributes, then brace-match the item body.
        let mut k = j + 1;
        while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[') {
            let mut d = 0usize;
            while k < tokens.len() {
                if tokens[k].is_punct('[') {
                    d += 1;
                } else if tokens[k].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        let mut brace = None;
        for (idx, t) in tokens.iter().enumerate().skip(k) {
            if t.is_punct(';') {
                break; // `#[cfg(test)] mod tests;` — body is elsewhere
            }
            if t.is_punct('{') {
                brace = Some(idx);
                break;
            }
        }
        if let Some(open) = brace {
            let mut d = 0usize;
            let mut end = tokens.len() - 1;
            for (idx, t) in tokens.iter().enumerate().skip(open) {
                if t.is_punct('{') {
                    d += 1;
                } else if t.is_punct('}') {
                    d -= 1;
                    if d == 0 {
                        end = idx;
                        break;
                    }
                }
            }
            regions.ranges.push((attr_line, tokens[end].line));
        }
        i = j + 1;
    }
    regions
}

/// One parsed `fs2-lint: allow(…) -- reason` annotation.
#[derive(Debug)]
pub struct Suppression {
    pub rule: String,
    /// The line the annotation governs.
    pub target_line: u32,
}

/// Parsed suppressions plus any malformed-annotation findings.
#[derive(Debug, Default)]
pub struct Suppressions {
    entries: Vec<Suppression>,
    pub findings: Vec<(u32, String)>,
}

impl Suppressions {
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        self.entries
            .iter()
            .any(|s| s.rule == rule && s.target_line == line)
    }
}

/// The line an annotation comment governs: its own line when code
/// precedes it (trailing comment), otherwise the next line bearing a
/// token.
fn target_line(comment: &Comment, tokens: &[Token]) -> u32 {
    let has_code_on_line = tokens.iter().any(|t| t.line == comment.first_line);
    if has_code_on_line {
        return comment.first_line;
    }
    tokens
        .iter()
        .map(|t| t.line)
        .filter(|&l| l > comment.last_line)
        .min()
        .unwrap_or(comment.last_line + 1)
}

/// Extracts every `fs2-lint:` annotation. Unknown rule names and
/// missing `-- reason` clauses become findings instead of silently
/// suppressing nothing.
pub fn suppressions(lexed: &Lexed) -> Suppressions {
    let mut out = Suppressions::default();
    for comment in &lexed.comments {
        let body = comment
            .text
            .trim_start_matches(['/', '*', '!'])
            .trim_end_matches(['*', '/'])
            .trim();
        let Some(rest) = body.strip_prefix("fs2-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let line = comment.first_line;
        let Some(args) = rest.strip_prefix("allow(") else {
            out.findings.push((
                line,
                format!("malformed annotation: expected `fs2-lint: allow(<rule>) -- <reason>`, got `{rest}`"),
            ));
            continue;
        };
        let Some(close) = args.find(')') else {
            out.findings
                .push((line, "malformed annotation: unclosed allow(".to_string()));
            continue;
        };
        let (names, tail) = args.split_at(close);
        let tail = tail[1..].trim();
        let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            out.findings.push((
                line,
                "suppression without a reason: append ` -- <why this site is exempt>`".to_string(),
            ));
            continue;
        }
        let target = target_line(comment, &lexed.tokens);
        for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if RULES.iter().any(|r| r.name == name) {
                out.entries.push(Suppression {
                    rule: name.to_string(),
                    target_line: target,
                });
            } else {
                out.findings
                    .push((line, format!("allow() names unknown rule `{name}`")));
            }
        }
    }
    out
}

/// Re-exported for the rule engine: pairs malformed-annotation
/// findings with the standard diagnostic shape.
pub fn suppression_findings(path: &str, sup: &Suppressions) -> Vec<Diagnostic> {
    sup.findings
        .iter()
        .map(|(line, msg)| Diagnostic {
            path: path.to_string(),
            line: *line,
            rule: "suppression",
            message: msg.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn module_paths_follow_the_workspace_layout() {
        assert_eq!(
            module_path_of("crates/cluster/src/fleet.rs"),
            "fs2-cluster::fleet"
        );
        assert_eq!(module_path_of("crates/core/src/lib.rs"), "fs2-core");
        assert_eq!(
            module_path_of("crates/bench/src/bin/bench_fleet.rs"),
            "fs2-bench::bin::bench_fleet"
        );
        assert_eq!(module_path_of("src/cli.rs"), "firestarter2::cli");
        assert_eq!(module_path_of("src/main.rs"), "firestarter2");
        assert_eq!(module_path_of("tests/props.rs"), "tests::props");
        assert_eq!(
            module_path_of("examples/quickstart.rs"),
            "examples::quickstart"
        );
    }

    #[test]
    fn cfg_test_modules_are_detected() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\nfn after() {}";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        assert!(!regions.contains(1));
        assert!(regions.contains(3));
        assert!(regions.contains(4));
        assert!(!regions.contains(6));
    }

    #[test]
    fn test_fns_outside_modules_are_detected() {
        let src = "#[test]\nfn alone() {\n    body();\n}\nfn live() {}";
        let regions = test_regions(&lex(src).tokens);
        assert!(regions.contains(3));
        assert!(!regions.contains(5));
    }

    #[test]
    fn suppressions_bind_to_the_right_line() {
        let src = "\
// fs2-lint: allow(wall-clock) -- standalone, governs next line
let a = now();
let b = now(); // fs2-lint: allow(wall-clock) -- trailing, same line
let c = now();";
        let s = suppressions(&lex(src));
        assert!(s.allows("wall-clock", 2));
        assert!(s.allows("wall-clock", 3));
        assert!(!s.allows("wall-clock", 4));
        assert!(s.findings.is_empty(), "{:?}", s.findings);
    }

    #[test]
    fn reasonless_or_unknown_suppressions_are_findings() {
        let src = "\
// fs2-lint: allow(wall-clock)
// fs2-lint: allow(not-a-rule) -- but explained
// fs2-lint: deny(everything)
let x = 1;";
        let s = suppressions(&lex(src));
        assert_eq!(s.findings.len(), 3, "{:?}", s.findings);
        assert!(!s.allows("wall-clock", 4));
    }
}
