//! The `fs2-lint` binary: walk the workspace, print findings, exit
//! nonzero if any. CI runs this as a dedicated job; locally:
//!
//! ```text
//! cargo run -p fs2-lint              # lint the enclosing workspace
//! cargo run -p fs2-lint -- PATH      # lint an explicit tree
//! cargo run -p fs2-lint -- --rules   # list the rules
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--rules" || a == "--list-rules") {
        for rule in fs2_lint::rules::RULES {
            println!("{:18} {}", rule.name, rule.summary);
        }
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: fs2-lint [PATH] [--rules]");
        println!("Lints the workspace at PATH (default: the enclosing cargo workspace).");
        return ExitCode::SUCCESS;
    }

    let root: PathBuf = match args.iter().find(|a| !a.starts_with('-')) {
        Some(p) => PathBuf::from(p),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("fs2-lint: cannot read current dir: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match fs2_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("fs2-lint: no enclosing cargo workspace; pass a path");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    match fs2_lint::lint_workspace(&root) {
        Ok(report) => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            if report.is_clean() {
                println!(
                    "fs2-lint: clean — {} files, {} rules",
                    report.files_scanned,
                    fs2_lint::rules::RULES.len()
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "fs2-lint: {} finding(s) across {} files",
                    report.diagnostics.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("fs2-lint: walk failed under {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}
