//! A hand-rolled Rust lexer, just deep enough that lint rules never
//! fire inside comments or literals.
//!
//! The lexer understands line comments, (nested) block comments,
//! string/char/byte/raw-string literals, raw identifiers, lifetimes,
//! and numbers; everything else is a one-character punctuation token.
//! It does **not** build an AST — rules pattern-match short token
//! sequences — but because literals and comments are consumed as
//! units, a `panic!` spelled inside a doc comment or a `"HashMap"` in
//! a string can never produce a finding.
//!
//! Comments are kept (with their line spans) rather than discarded:
//! the `safety-comment` rule needs to see `// SAFETY:` text, and the
//! suppression syntax (`// fs2-lint: allow(<rule>) -- <reason>`) lives
//! in comments too.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`for`, `unsafe`, `HashMap`, `r#type`).
    Ident,
    /// Numeric literal (`12`, `0xFF`, `1_000.5e-3`).
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `'\u{1F600}'`, `b'x'`).
    Char,
    /// Lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// Single punctuation character (`.`, `{`, `#`, …).
    Punct,
}

/// One lexed token. `text` carries the identifier spelling (for
/// `Ident`) or the single character (for `Punct`); literal bodies are
/// deliberately dropped so rules cannot accidentally match them.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One comment (line or block), with the full source text including
/// the `//` / `/* */` markers.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub first_line: u32,
    /// 1-based line the comment ends on (block comments span lines).
    pub last_line: u32,
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Unterminated literals or
/// comments consume to end-of-file rather than erroring: the linter
/// must never panic on the code it inspects (rustc reports those).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_whitespace() => self.i += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                'r' | 'b' if self.string_prefix() => {}
                '"' => self.cooked_string(),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident(),
                c => {
                    let line = self.line;
                    self.i += 1;
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.i += 1;
        }
        self.out.comments.push(Comment {
            first_line: self.line,
            last_line: self.line,
            text: self.chars[start..self.i].iter().collect(),
        });
    }

    fn block_comment(&mut self) {
        let (start, first) = (self.i, self.line);
        self.i += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (None, _) => break,
                (Some('\n'), _) => {
                    self.line += 1;
                    self.i += 1;
                }
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.i += 2;
                }
                _ => self.i += 1,
            }
        }
        self.out.comments.push(Comment {
            first_line: first,
            last_line: self.line,
            text: self.chars[start..self.i].iter().collect(),
        });
    }

    /// Handles `r"…"`, `r#"…"#…`, `b"…"`, `br#"…"#`, `b'…'`, and raw
    /// identifiers (`r#type`). Returns false when the `r`/`b` at the
    /// cursor is just the start of a plain identifier.
    fn string_prefix(&mut self) -> bool {
        let line = self.line;
        let mut j = self.i;
        if self.chars[j] == 'b' {
            j += 1;
        }
        let raw = self.chars.get(j) == Some(&'r');
        if raw {
            j += 1;
        }
        let mut hashes = 0usize;
        while self.chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        match self.chars.get(j) {
            Some('"') if raw || hashes == 0 => {
                if raw {
                    self.i = j + 1;
                    self.raw_string_body(hashes);
                    self.push(TokenKind::Str, String::new(), line);
                    true
                } else if self.chars[self.i] == 'b' && j == self.i + 1 {
                    // b"…": cooked byte string.
                    self.i = j;
                    self.cooked_string();
                    true
                } else {
                    false
                }
            }
            Some('\'') if !raw && hashes == 0 && self.chars[self.i] == 'b' && j == self.i + 1 => {
                // b'…': byte literal; reuse the char-literal scanner.
                self.i = j;
                self.char_or_lifetime();
                true
            }
            Some(&c) if raw && hashes == 1 && is_ident_start(c) => {
                // r#ident: raw identifier. Token text is the bare name
                // so keyword-named idents never match rule keywords.
                self.i = j;
                self.ident();
                true
            }
            _ => false,
        }
    }

    fn raw_string_body(&mut self, hashes: usize) {
        loop {
            match self.peek(0) {
                None => break,
                Some('\n') => {
                    self.line += 1;
                    self.i += 1;
                }
                Some('"') => {
                    let closed = (1..=hashes).all(|k| self.peek(k) == Some('#'));
                    self.i += 1;
                    if closed {
                        self.i += hashes;
                        break;
                    }
                }
                Some(_) => self.i += 1,
            }
        }
    }

    fn cooked_string(&mut self) {
        let line = self.line;
        self.i += 1; // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some('"') => {
                    self.i += 1;
                    break;
                }
                Some('\\') => {
                    // Skip the escaped character; a `\<newline>` line
                    // continuation still advances the line counter.
                    if self.peek(1) == Some('\n') {
                        self.line += 1;
                    }
                    self.i += 2;
                }
                Some('\n') => {
                    self.line += 1;
                    self.i += 1;
                }
                Some(_) => self.i += 1,
            }
        }
        self.push(TokenKind::Str, String::new(), line);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        match (self.peek(1), self.peek(2)) {
            (Some('\\'), _) => {
                // Escaped char literal: skip quote + backslash + the
                // escaped char, then scan to the closing quote (this
                // covers multi-char escapes like '\u{1F600}').
                self.i += 3;
                while self.peek(0).is_some_and(|c| c != '\'') {
                    self.i += 1;
                }
                self.i += 1;
                self.push(TokenKind::Char, String::new(), line);
            }
            (Some(c), next) if is_ident_start(c) && next != Some('\'') => {
                // Lifetime or loop label: 'a, 'static, 'outer.
                self.i += 2;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.i += 1;
                }
                self.push(TokenKind::Lifetime, String::new(), line);
            }
            (Some(_), _) => {
                // Plain char literal, possibly non-ASCII: '@', 'é'.
                self.i += 2;
                while self.peek(0).is_some_and(|c| c != '\'') {
                    self.i += 1;
                }
                self.i += 1;
                self.push(TokenKind::Char, String::new(), line);
            }
            (None, _) => self.i += 1,
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let mut prev = '0';
        loop {
            match self.peek(0) {
                Some(c) if is_ident_continue(c) => {
                    prev = c;
                    self.i += 1;
                }
                // Decimal point only when a digit follows, so `1.max(2)`
                // lexes as Num(1) Punct(.) Ident(max).
                Some('.') if self.peek(1).is_some_and(|c| c.is_ascii_digit()) => {
                    prev = '.';
                    self.i += 1;
                }
                // Exponent sign: 1e-10, 2.5E+3.
                Some('+' | '-') if matches!(prev, 'e' | 'E') => {
                    prev = '+';
                    self.i += 1;
                }
                _ => break,
            }
        }
        self.push(TokenKind::Num, String::new(), line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.i;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(TokenKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn literals_and_comments_hide_their_contents() {
        let src = r##"
            // panic! in a line comment
            /* HashMap /* nested .keys() */ still comment */
            let s = "Instant::now() in a string \" with escapes";
            let r = r#"thread_rng in a raw "quoted" string"#;
            let b = b"from_entropy";
            let c = '\"';
        "##;
        let names = idents(src);
        for bad in ["panic", "HashMap", "Instant", "thread_rng", "from_entropy"] {
            assert!(!names.contains(&bad.to_string()), "{bad} leaked: {names:?}");
        }
        assert!(names.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = toks.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let toks = lex(src).tokens;
        let b = toks.iter().find(|t| t.is_ident("b")).expect("ident b");
        assert_eq!(b.line, 3);
    }

    #[test]
    fn comments_keep_their_spans() {
        let lexed = lex("code();\n/* a\nb\nc */\nmore();");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].first_line, 2);
        assert_eq!(lexed.comments[0].last_line, 4);
    }

    #[test]
    fn raw_identifiers_lex_as_plain_names() {
        let names = idents("let r#type = r#fn;");
        assert_eq!(names, ["let", "type", "fn"]);
    }
}
