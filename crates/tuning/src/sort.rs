//! Fast non-dominated sorting and crowding distance (Deb et al. 2002).

/// Pareto dominance for maximization: `a` dominates `b` iff `a` is at
/// least as good in every objective and strictly better in one.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Fast non-dominated sort: partitions indices into fronts, best first.
///
/// O(M·N²) as in the paper's complexity argument for choosing NSGA-II.
pub fn fast_nondominated_sort(objectives: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = objectives.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // p dominates these
    let mut domination_count = vec![0usize; n]; // how many dominate p
    let mut fronts: Vec<Vec<usize>> = vec![Vec::new()];

    for p in 0..n {
        for q in 0..n {
            if p == q {
                continue;
            }
            if dominates(&objectives[p], &objectives[q]) {
                dominated_by[p].push(q);
            } else if dominates(&objectives[q], &objectives[p]) {
                domination_count[p] += 1;
            }
        }
        if domination_count[p] == 0 {
            fronts[0].push(p);
        }
    }

    let mut i = 0;
    #[allow(clippy::while_let_loop)]
    while !fronts[i].is_empty() {
        let mut next = Vec::new();
        for &p in &fronts[i] {
            for &q in &dominated_by[p] {
                domination_count[q] -= 1;
                if domination_count[q] == 0 {
                    next.push(q);
                }
            }
        }
        i += 1;
        fronts.push(next);
    }
    fronts.pop(); // drop the trailing empty front
    fronts
}

/// Crowding distance of each member of a front (index-aligned with
/// `front`). Boundary solutions get `f64::INFINITY`.
pub fn crowding_distance(objectives: &[Vec<f64>], front: &[usize]) -> Vec<f64> {
    let n = front.len();
    let mut dist = vec![0.0f64; n];
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    let m = objectives[front[0]].len();
    #[allow(clippy::needless_range_loop)] // `obj` indexes a second array
    for obj in 0..m {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| objectives[front[a]][obj].total_cmp(&objectives[front[b]][obj]));
        let lo = objectives[front[order[0]]][obj];
        let hi = objectives[front[order[n - 1]]][obj];
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        let range = hi - lo;
        if range <= 0.0 {
            continue;
        }
        for w in 1..n - 1 {
            let prev = objectives[front[order[w - 1]]][obj];
            let next = objectives[front[order[w + 1]]][obj];
            dist[order[w]] += (next - prev) / range;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[2.0, 2.0], &[1.0, 1.0]));
        assert!(dominates(&[2.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0])); // equal: no
        assert!(!dominates(&[2.0, 0.5], &[1.0, 1.0])); // trade-off: no
        assert!(!dominates(&[0.0, 0.0], &[1.0, 1.0]));
    }

    #[test]
    fn sorting_into_fronts() {
        // Points: A(4,4) dominates everything; B(3,1), C(1,3) mutually
        // non-dominated; D(0,0) dominated by all.
        let objs = vec![
            vec![4.0, 4.0], // 0: front 0
            vec![3.0, 1.0], // 1: front 1
            vec![1.0, 3.0], // 2: front 1
            vec![0.0, 0.0], // 3: front 2
        ];
        let fronts = fast_nondominated_sort(&objs);
        assert_eq!(fronts.len(), 3);
        assert_eq!(fronts[0], vec![0]);
        let mut f1 = fronts[1].clone();
        f1.sort_unstable();
        assert_eq!(f1, vec![1, 2]);
        assert_eq!(fronts[2], vec![3]);
    }

    #[test]
    fn all_nondominated_is_one_front() {
        let objs: Vec<Vec<f64>> = (0..5)
            .map(|i| vec![f64::from(i), f64::from(4 - i)])
            .collect();
        let fronts = fast_nondominated_sort(&objs);
        assert_eq!(fronts.len(), 1);
        assert_eq!(fronts[0].len(), 5);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(fast_nondominated_sort(&[]).is_empty());
        let fronts = fast_nondominated_sort(&[vec![1.0, 2.0]]);
        assert_eq!(fronts, vec![vec![0]]);
    }

    #[test]
    fn crowding_boundaries_infinite_middle_finite() {
        // Evenly spread front along a line.
        let objs: Vec<Vec<f64>> = (0..5)
            .map(|i| vec![f64::from(i), f64::from(4 - i)])
            .collect();
        let front: Vec<usize> = (0..5).collect();
        let d = crowding_distance(&objs, &front);
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[4], f64::INFINITY);
        for v in d.iter().take(4).skip(1) {
            assert!(v.is_finite());
            assert!(*v > 0.0);
        }
        // Even spread: all interior distances equal.
        assert!((d[1] - d[2]).abs() < 1e-12);
    }

    #[test]
    fn crowding_prefers_sparse_regions() {
        // Index 1 is crowded (close neighbours), index 2 sits in a gap.
        let objs = vec![
            vec![0.0, 10.0],
            vec![0.5, 9.5],
            vec![5.0, 5.0],
            vec![10.0, 0.0],
        ];
        let front: Vec<usize> = (0..4).collect();
        let d = crowding_distance(&objs, &front);
        assert!(d[2] > d[1], "sparse point not preferred: {d:?}");
    }

    #[test]
    fn tiny_fronts_are_infinite() {
        let objs = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let d = crowding_distance(&objs, &[0, 1]);
        assert_eq!(d, vec![f64::INFINITY, f64::INFINITY]);
    }

    #[test]
    fn constant_objective_range_is_handled() {
        // Second objective constant: contributes nothing, no NaN.
        let objs = vec![vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]];
        let d = crowding_distance(&objs, &[0, 1, 2]);
        assert!(d[1].is_finite());
        assert!(!d[1].is_nan());
    }
}
