//! # fs2-tuning — NSGA-II multi-objective optimization
//!
//! §III-C of the paper: FIRESTARTER 2 embeds NSGA-II (Deb et al., 2002)
//! to tune the memory-access vector `M` against two objectives — measured
//! power and instruction throughput. NSGA-II was chosen because it is
//! easy to implement without external dependencies (a design goal of the
//! tool), needs no sharing parameter, and sorts in O(M·N²).
//!
//! The implementation here is a faithful, generic µ+λ NSGA-II over
//! bounded integer genomes (FIRESTARTER individuals are vectors of
//! access-group counts):
//!
//! * [`problem`] — the [`problem::Problem`] trait (genes → objectives,
//!   maximization) and evaluation bookkeeping,
//! * [`sort`] — fast non-dominated sorting and crowding distance,
//! * [`nsga2`] — initialization, binary tournament on the crowded
//!   comparison operator, uniform crossover, per-gene mutation
//!   (`--nsga2-m`), elitist survival, and the full evaluation history
//!   that Fig. 11 plots,
//! * [`testfns`] — classic test problems (SCH, discretized ZDT1) used by
//!   the convergence tests.

pub mod nsga2;
pub mod problem;
pub mod sort;
pub mod testfns;

pub use nsga2::{Nsga2, Nsga2Config, Nsga2Result};
pub use problem::{EvaluatedIndividual, Problem};
pub use sort::{crowding_distance, dominates, fast_nondominated_sort};
