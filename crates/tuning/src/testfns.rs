//! Classic multi-objective test functions on integer genomes.
//!
//! Used by the convergence tests; objectives are negated where needed so
//! everything is maximization (matching the FIRESTARTER problem).

use crate::problem::Problem;

/// Schaffer's problem N.1 (SCH): minimize f₁ = x², f₂ = (x−2)².
///
/// Gene g ∈ [0, 1000] maps to x = (g − 200) / 100 ∈ [−2, 8]; the Pareto
/// set is x ∈ [0, 2].
pub struct Sch {
    evals: u64,
}

impl Sch {
    pub fn new() -> Sch {
        Sch { evals: 0 }
    }

    /// Gene-to-x decoding.
    pub fn gene_to_x(g: u32) -> f64 {
        (f64::from(g) - 200.0) / 100.0
    }

    pub fn evals(&self) -> u64 {
        self.evals
    }
}

impl Default for Sch {
    fn default() -> Self {
        Self::new()
    }
}

impl Problem for Sch {
    fn n_genes(&self) -> usize {
        1
    }

    fn n_objectives(&self) -> usize {
        2
    }

    fn bounds(&self) -> Vec<(u32, u32)> {
        vec![(0, 1000)]
    }

    fn evaluate(&mut self, genes: &[u32]) -> Vec<f64> {
        self.evals += 1;
        let x = Sch::gene_to_x(genes[0]);
        vec![-(x * x), -((x - 2.0) * (x - 2.0))]
    }
}

/// A discretized ZDT1: n genes in [0, 100] mapped to [0, 1].
///
/// Minimize f₁ = x₀ and f₂ = g·(1 − √(x₀/g)) with
/// g = 1 + 9·mean(x₁..xₙ₋₁); returned negated for maximization. The
/// Pareto set has x₁..xₙ₋₁ = 0.
pub struct DiscreteZdt1 {
    n: usize,
}

impl DiscreteZdt1 {
    pub fn new(n: usize) -> DiscreteZdt1 {
        assert!(n >= 2);
        DiscreteZdt1 { n }
    }
}

impl Problem for DiscreteZdt1 {
    fn n_genes(&self) -> usize {
        self.n
    }

    fn n_objectives(&self) -> usize {
        2
    }

    fn bounds(&self) -> Vec<(u32, u32)> {
        vec![(0, 100); self.n]
    }

    fn evaluate(&mut self, genes: &[u32]) -> Vec<f64> {
        let x: Vec<f64> = genes.iter().map(|&g| f64::from(g) / 100.0).collect();
        let f1 = x[0];
        let tail_mean = x[1..].iter().sum::<f64>() / (self.n - 1) as f64;
        let g = 1.0 + 9.0 * tail_mean;
        let f2 = g * (1.0 - (f1 / g).sqrt());
        vec![-f1, -f2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sch_known_points() {
        let mut p = Sch::new();
        // x = 0 (gene 200): f = (0, -4) → maximized (0, -4).
        let obj = p.evaluate(&[200]);
        assert!((obj[0] - 0.0).abs() < 1e-12);
        assert!((obj[1] + 4.0).abs() < 1e-12);
        // x = 2 (gene 400): f = (-4, 0).
        let obj = p.evaluate(&[400]);
        assert!((obj[0] + 4.0).abs() < 1e-12);
        assert!((obj[1] - 0.0).abs() < 1e-12);
        assert_eq!(p.evals(), 2);
    }

    #[test]
    fn zdt1_optimum_structure() {
        let mut p = DiscreteZdt1::new(4);
        // On the Pareto front (tail = 0): f2 = 1 - sqrt(f1).
        let obj = p.evaluate(&[25, 0, 0, 0]);
        let f1 = -obj[0];
        let f2 = -obj[1];
        assert!((f2 - (1.0 - f1.sqrt())).abs() < 1e-12);
        // Off the front the same f1 has strictly worse f2.
        let worse = p.evaluate(&[25, 50, 50, 50]);
        assert!(-worse[1] > f2);
    }
}
