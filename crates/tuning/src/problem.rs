//! Optimization problem abstraction.

/// A multi-objective problem over a bounded integer genome.
///
/// All objectives are **maximized** (power and IPC both are in the
/// paper's setup; test functions negate their minimization objectives).
pub trait Problem {
    /// Number of genes in an individual.
    fn n_genes(&self) -> usize;
    /// Number of objectives.
    fn n_objectives(&self) -> usize;
    /// Inclusive per-gene bounds `(min, max)`.
    fn bounds(&self) -> Vec<(u32, u32)>;
    /// Evaluates an individual, returning one value per objective.
    ///
    /// Takes `&mut self` because evaluation may run a measurement (the
    /// FIRESTARTER problem advances the simulated clock).
    fn evaluate(&mut self, genes: &[u32]) -> Vec<f64>;

    /// Optional repair of an out-of-spec genome (e.g. FIRESTARTER rejects
    /// the all-zero access vector). Default: identity.
    fn repair(&self, genes: &mut [u32]) {
        let _ = genes;
    }
}

/// One evaluated individual, kept for the full history (Fig. 11).
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluatedIndividual {
    pub genes: Vec<u32>,
    pub objectives: Vec<f64>,
    /// Generation in which this evaluation happened (0 = initial).
    pub generation: u32,
    /// Global evaluation sequence number (the Fig. 11 color axis).
    pub eval_index: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy;

    impl Problem for Toy {
        fn n_genes(&self) -> usize {
            2
        }
        fn n_objectives(&self) -> usize {
            2
        }
        fn bounds(&self) -> Vec<(u32, u32)> {
            vec![(0, 10), (0, 10)]
        }
        fn evaluate(&mut self, genes: &[u32]) -> Vec<f64> {
            vec![f64::from(genes[0]), f64::from(genes[1])]
        }
    }

    #[test]
    fn default_repair_is_identity() {
        let p = Toy;
        let mut g = vec![3, 4];
        p.repair(&mut g);
        assert_eq!(g, vec![3, 4]);
    }

    #[test]
    fn evaluation_passthrough() {
        let mut p = Toy;
        assert_eq!(p.evaluate(&[1, 9]), vec![1.0, 9.0]);
    }
}
