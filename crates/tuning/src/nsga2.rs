//! The NSGA-II driver.
//!
//! Matches the paper's §IV-E parameterization: "In the first generation,
//! an initial population of 40 is randomly initialized and evaluated. The
//! following 20 generations are created by binary tournament select,
//! recombination, and mutation (35 % probability) from the individuals of
//! the previous generation."

use crate::problem::{EvaluatedIndividual, Problem};
use crate::sort::{crowding_distance, fast_nondominated_sort};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// NSGA-II parameters (CLI: `--individuals`, `--generations`,
/// `--nsga2-m`).
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2Config {
    /// Population size µ (paper: 40).
    pub individuals: usize,
    /// Number of offspring generations (paper: 20).
    pub generations: u32,
    /// Per-individual mutation probability m (paper: 0.35).
    pub mutation_prob: f64,
    /// Crossover probability per offspring (uniform crossover).
    pub crossover_prob: f64,
    /// RNG seed — runs are fully reproducible.
    pub seed: u64,
}

impl Nsga2Config {
    /// Total number of evaluations a run performs (the initial
    /// population plus one population per offspring generation) —
    /// duplicate-cache hits included, so this is exact, not an
    /// estimate. Sweep drivers use it as a per-item size hint when
    /// fanning whole tuning runs out over worker threads.
    pub fn evaluation_budget(&self) -> u64 {
        self.individuals as u64 * (u64::from(self.generations) + 1)
    }
}

impl Default for Nsga2Config {
    fn default() -> Nsga2Config {
        Nsga2Config {
            individuals: 40,
            generations: 20,
            mutation_prob: 0.35,
            crossover_prob: 0.9,
            seed: 0x5EED_F1DE,
        }
    }
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct Nsga2Result {
    /// Every evaluation performed, in order (Fig. 11's scatter).
    pub history: Vec<EvaluatedIndividual>,
    /// The final population's first non-dominated front.
    pub front: Vec<EvaluatedIndividual>,
    /// Number of evaluations answered from the duplicate cache.
    pub cache_hits: u32,
}

impl Nsga2Result {
    /// The individual maximizing objective `obj` on the final front — the
    /// paper selects the highest-power individual as ω_opt.
    pub fn best_by(&self, obj: usize) -> Option<&EvaluatedIndividual> {
        self.front
            .iter()
            .max_by(|a, b| a.objectives[obj].total_cmp(&b.objectives[obj]))
    }
}

struct Member {
    genes: Vec<u32>,
    objectives: Vec<f64>,
}

/// The optimizer.
pub struct Nsga2 {
    config: Nsga2Config,
}

impl Nsga2 {
    pub fn new(config: Nsga2Config) -> Nsga2 {
        assert!(config.individuals >= 2, "population must be at least 2");
        assert!((0.0..=1.0).contains(&config.mutation_prob));
        assert!((0.0..=1.0).contains(&config.crossover_prob));
        Nsga2 { config }
    }

    /// Runs the optimization, calling `on_eval` after every evaluation
    /// (the runner uses this hook to emit the Fig. 7 trace).
    pub fn run_with_callback<P: Problem>(
        &self,
        problem: &mut P,
        mut on_eval: impl FnMut(&EvaluatedIndividual),
    ) -> Nsga2Result {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let bounds = problem.bounds();
        assert_eq!(bounds.len(), problem.n_genes());
        let mut history: Vec<EvaluatedIndividual> = Vec::new();
        let mut cache: HashMap<Vec<u32>, Vec<f64>> = HashMap::new();
        let mut cache_hits = 0u32;
        let mut eval_index = 0u32;

        let eval = |genes: Vec<u32>,
                    generation: u32,
                    problem: &mut P,
                    history: &mut Vec<EvaluatedIndividual>,
                    cache: &mut HashMap<Vec<u32>, Vec<f64>>,
                    cache_hits: &mut u32,
                    eval_index: &mut u32,
                    on_eval: &mut dyn FnMut(&EvaluatedIndividual)|
         -> Member {
            let objectives = if let Some(cached) = cache.get(&genes) {
                *cache_hits += 1;
                cached.clone()
            } else {
                let obj = problem.evaluate(&genes);
                assert_eq!(obj.len(), problem.n_objectives());
                cache.insert(genes.clone(), obj.clone());
                obj
            };
            let ind = EvaluatedIndividual {
                genes: genes.clone(),
                objectives: objectives.clone(),
                generation,
                eval_index: *eval_index,
            };
            *eval_index += 1;
            on_eval(&ind);
            history.push(ind);
            Member { genes, objectives }
        };

        // Initial population: uniform random within bounds.
        let mut pop: Vec<Member> = Vec::with_capacity(self.config.individuals);
        for _ in 0..self.config.individuals {
            let mut genes: Vec<u32> = bounds
                .iter()
                .map(|&(lo, hi)| rng.gen_range(lo..=hi))
                .collect();
            problem.repair(&mut genes);
            pop.push(eval(
                genes,
                0,
                problem,
                &mut history,
                &mut cache,
                &mut cache_hits,
                &mut eval_index,
                &mut on_eval,
            ));
        }

        for generation in 1..=self.config.generations {
            // Rank the current population for tournament selection.
            let objs: Vec<Vec<f64>> = pop.iter().map(|m| m.objectives.clone()).collect();
            let fronts = fast_nondominated_sort(&objs);
            let mut rank = vec![0usize; pop.len()];
            let mut crowd = vec![0.0f64; pop.len()];
            for (r, front) in fronts.iter().enumerate() {
                let d = crowding_distance(&objs, front);
                for (i, &idx) in front.iter().enumerate() {
                    rank[idx] = r;
                    crowd[idx] = d[i];
                }
            }

            let tournament = |rng: &mut StdRng| -> usize {
                let a = rng.gen_range(0..pop.len());
                let b = rng.gen_range(0..pop.len());
                // Crowded-comparison operator: lower rank wins; ties break
                // on larger crowding distance.
                if rank[a] < rank[b] || (rank[a] == rank[b] && crowd[a] > crowd[b]) {
                    a
                } else {
                    b
                }
            };

            // Offspring via tournament + uniform crossover + mutation.
            let mut offspring: Vec<Vec<u32>> = Vec::with_capacity(self.config.individuals);
            while offspring.len() < self.config.individuals {
                let p1 = tournament(&mut rng);
                let p2 = tournament(&mut rng);
                let mut child = pop[p1].genes.clone();
                if rng.gen_bool(self.config.crossover_prob) {
                    for (g, other) in child.iter_mut().zip(&pop[p2].genes) {
                        if rng.gen_bool(0.5) {
                            *g = *other;
                        }
                    }
                }
                if rng.gen_bool(self.config.mutation_prob) {
                    // Mutate one random gene: small step or resample.
                    let gi = rng.gen_range(0..child.len());
                    let (lo, hi) = bounds[gi];
                    child[gi] = if rng.gen_bool(0.5) {
                        // ±1 step, clamped.
                        let delta: i64 = if rng.gen_bool(0.5) { 1 } else { -1 };
                        let v = i64::from(child[gi]) + delta;
                        v.clamp(i64::from(lo), i64::from(hi)) as u32
                    } else {
                        rng.gen_range(lo..=hi)
                    };
                }
                problem.repair(&mut child);
                offspring.push(child);
            }

            for child in offspring {
                pop.push(eval(
                    child,
                    generation,
                    problem,
                    &mut history,
                    &mut cache,
                    &mut cache_hits,
                    &mut eval_index,
                    &mut on_eval,
                ));
            }

            // Elitist µ+λ survival: best fronts, crowding-truncated.
            let objs: Vec<Vec<f64>> = pop.iter().map(|m| m.objectives.clone()).collect();
            let fronts = fast_nondominated_sort(&objs);
            let mut keep: Vec<usize> = Vec::with_capacity(self.config.individuals);
            for front in &fronts {
                if keep.len() + front.len() <= self.config.individuals {
                    keep.extend_from_slice(front);
                } else {
                    let d = crowding_distance(&objs, front);
                    let mut by_crowd: Vec<usize> = (0..front.len()).collect();
                    by_crowd.sort_by(|&a, &b| d[b].total_cmp(&d[a]));
                    for &i in by_crowd.iter().take(self.config.individuals - keep.len()) {
                        keep.push(front[i]);
                    }
                    break;
                }
            }
            keep.sort_unstable();
            keep.reverse();
            let mut survivors = Vec::with_capacity(self.config.individuals);
            for i in keep {
                survivors.push(pop.swap_remove(i));
            }
            pop = survivors;
        }

        // Final front from the surviving population.
        let objs: Vec<Vec<f64>> = pop.iter().map(|m| m.objectives.clone()).collect();
        let fronts = fast_nondominated_sort(&objs);
        let front = fronts
            .first()
            .map(|f| {
                f.iter()
                    .map(|&i| EvaluatedIndividual {
                        genes: pop[i].genes.clone(),
                        objectives: pop[i].objectives.clone(),
                        generation: self.config.generations,
                        eval_index: u32::MAX, // survivors, not fresh evals
                    })
                    .collect()
            })
            .unwrap_or_default();

        Nsga2Result {
            history,
            front,
            cache_hits,
        }
    }

    /// Runs without a per-evaluation callback.
    pub fn run<P: Problem>(&self, problem: &mut P) -> Nsga2Result {
        self.run_with_callback(problem, |_| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfns::{DiscreteZdt1, Sch};

    fn config(seed: u64) -> Nsga2Config {
        Nsga2Config {
            individuals: 40,
            generations: 20,
            mutation_prob: 0.35,
            crossover_prob: 0.9,
            seed,
        }
    }

    #[test]
    fn sch_front_converges_to_pareto_set() {
        // SCH: Pareto set is x ∈ [0, 2] (gene 200..=400 after offset).
        let mut p = Sch::new();
        let result = Nsga2::new(config(1)).run(&mut p);
        assert!(!result.front.is_empty());
        for ind in &result.front {
            let x = Sch::gene_to_x(ind.genes[0]);
            assert!(
                (-0.2..=2.2).contains(&x),
                "front member outside Pareto set: x = {x}"
            );
        }
    }

    #[test]
    fn final_front_dominates_initial_population_spread() {
        let mut p = DiscreteZdt1::new(8);
        let result = Nsga2::new(config(2)).run(&mut p);
        // Hypervolume proxy: best f1+f2 sum of the front must beat the
        // best of generation 0.
        let gen0_best = result
            .history
            .iter()
            .filter(|i| i.generation == 0)
            .map(|i| i.objectives.iter().sum::<f64>())
            .fold(f64::NEG_INFINITY, f64::max);
        let front_best = result
            .front
            .iter()
            .map(|i| i.objectives.iter().sum::<f64>())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            front_best >= gen0_best,
            "no improvement: {front_best} < {gen0_best}"
        );
    }

    #[test]
    fn history_counts_and_generation_tags() {
        let mut p = Sch::new();
        let cfg = config(3);
        let result = Nsga2::new(cfg.clone()).run(&mut p);
        // 40 initial + 20 × 40 offspring evaluations (incl. cache hits).
        assert_eq!(
            result.history.len(),
            cfg.individuals * (cfg.generations as usize + 1)
        );
        // The published budget is exact — sweep hints rely on it.
        assert_eq!(result.history.len() as u64, cfg.evaluation_budget());
        assert_eq!(result.history[0].generation, 0);
        assert_eq!(result.history.last().unwrap().generation, cfg.generations);
        // Eval indices are sequential.
        for (i, ind) in result.history.iter().enumerate() {
            assert_eq!(ind.eval_index as usize, i);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let r1 = Nsga2::new(config(7)).run(&mut Sch::new());
        let r2 = Nsga2::new(config(7)).run(&mut Sch::new());
        let h1: Vec<&Vec<u32>> = r1.history.iter().map(|i| &i.genes).collect();
        let h2: Vec<&Vec<u32>> = r2.history.iter().map(|i| &i.genes).collect();
        assert_eq!(h1, h2);
    }

    #[test]
    fn different_seeds_differ() {
        let r1 = Nsga2::new(config(7)).run(&mut Sch::new());
        let r2 = Nsga2::new(config(8)).run(&mut Sch::new());
        let h1: Vec<&Vec<u32>> = r1.history.iter().map(|i| &i.genes).collect();
        let h2: Vec<&Vec<u32>> = r2.history.iter().map(|i| &i.genes).collect();
        assert_ne!(h1, h2);
    }

    #[test]
    fn duplicate_cache_fires() {
        // Tiny search space forces duplicates.
        struct Tiny;
        impl Problem for Tiny {
            fn n_genes(&self) -> usize {
                1
            }
            fn n_objectives(&self) -> usize {
                2
            }
            fn bounds(&self) -> Vec<(u32, u32)> {
                vec![(0, 3)]
            }
            fn evaluate(&mut self, genes: &[u32]) -> Vec<f64> {
                vec![f64::from(genes[0]), -f64::from(genes[0])]
            }
        }
        let result = Nsga2::new(config(4)).run(&mut Tiny);
        assert!(result.cache_hits > 0);
    }

    #[test]
    fn callback_sees_every_evaluation() {
        let mut p = Sch::new();
        let mut seen = 0u32;
        let result = Nsga2::new(config(5)).run_with_callback(&mut p, |_ind| {
            seen += 1;
        });
        assert_eq!(seen as usize, result.history.len());
    }

    #[test]
    fn best_by_objective_selection() {
        let mut p = Sch::new();
        let result = Nsga2::new(config(6)).run(&mut p);
        let best0 = result.best_by(0).unwrap();
        for ind in &result.front {
            assert!(best0.objectives[0] >= ind.objectives[0]);
        }
    }

    #[test]
    fn repair_is_applied() {
        struct NonZero;
        impl Problem for NonZero {
            fn n_genes(&self) -> usize {
                2
            }
            fn n_objectives(&self) -> usize {
                2
            }
            fn bounds(&self) -> Vec<(u32, u32)> {
                vec![(0, 5), (0, 5)]
            }
            fn evaluate(&mut self, genes: &[u32]) -> Vec<f64> {
                assert!(
                    genes.iter().any(|&g| g > 0),
                    "repair failed: all-zero genome evaluated"
                );
                vec![f64::from(genes[0]), f64::from(genes[1])]
            }
            fn repair(&self, genes: &mut [u32]) {
                if genes.iter().all(|&g| g == 0) {
                    genes[0] = 1;
                }
            }
        }
        // Must not panic.
        let _ = Nsga2::new(config(9)).run(&mut NonZero);
    }
}
