//! The FIRESTARTER GPU stress driver (`--gpus`-equivalent).

use crate::device::{GpuDevice, GpuSpec, InitStrategy};

/// A set of devices stressed together with the CPU workload.
#[derive(Debug, Clone)]
pub struct GpuStress {
    pub devices: Vec<GpuDevice>,
    pub strategy: InitStrategy,
    /// Fraction of device memory used for the DGEMM operands.
    pub mem_fraction: f64,
}

/// Summary of a GPU stress window.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuStressReport {
    /// Total average power contribution of all devices, W.
    pub avg_power_w: f64,
    /// Sum of idle contributions (the Fig. 2 "+29 W per GPU").
    pub idle_power_w: f64,
    /// Sum of fully-stressed contributions ("+156 W per GPU").
    pub stress_power_w: f64,
    /// Matrix dimension chosen per device.
    pub matrix_n: u64,
    /// Initialization time per device, seconds.
    pub init_time_s: f64,
    /// DGEMM iterations completed per device in the window.
    pub dgemm_iterations: u64,
}

impl GpuStress {
    /// The Fig. 2 configuration: four K80 cards.
    pub fn four_k80() -> GpuStress {
        GpuStress {
            devices: (0..4).map(|_| GpuDevice::new(GpuSpec::k80())).collect(),
            strategy: InitStrategy::OnDevice,
            mem_fraction: 0.9,
        }
    }

    pub fn none() -> GpuStress {
        GpuStress {
            devices: Vec::new(),
            strategy: InitStrategy::OnDevice,
            mem_fraction: 0.9,
        }
    }

    pub fn with_strategy(mut self, strategy: InitStrategy) -> GpuStress {
        self.strategy = strategy;
        self
    }

    /// Runs the stress loop for `window_s` seconds (simulated) and
    /// reports power contributions.
    pub fn run(&self, window_s: f64) -> GpuStressReport {
        if self.devices.is_empty() {
            return GpuStressReport {
                avg_power_w: 0.0,
                idle_power_w: 0.0,
                stress_power_w: 0.0,
                matrix_n: 0,
                init_time_s: 0.0,
                dgemm_iterations: 0,
            };
        }
        let mut avg = 0.0;
        let mut idle = 0.0;
        let mut stress = 0.0;
        let mut n_dim = 0;
        let mut init_t = 0.0;
        let mut iters = 0;
        for d in &self.devices {
            let n = d.matrix_dim_for_memory(self.mem_fraction);
            let init = d.init_time_s(n, self.strategy);
            let compute_window = (window_s - init).max(0.0);
            avg += d.avg_power_over(window_s, n, self.strategy);
            idle += d.spec.idle_w;
            stress += d.spec.stress_w;
            n_dim = n;
            init_t = init;
            iters = (compute_window / d.dgemm_time_s(n)).floor() as u64;
        }
        GpuStressReport {
            avg_power_w: avg,
            idle_power_w: idle,
            stress_power_w: stress,
            matrix_n: n_dim,
            init_time_s: init_t,
            dgemm_iterations: iters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_contributions() {
        let report = GpuStress::four_k80().run(240.0);
        assert_eq!(report.idle_power_w, 4.0 * 29.0);
        assert_eq!(report.stress_power_w, 4.0 * 156.0);
        // Long window: average sits near full stress.
        assert!(report.avg_power_w > 0.95 * report.stress_power_w);
        assert!(report.dgemm_iterations > 0);
        assert!(report.matrix_n > 10_000);
    }

    #[test]
    fn empty_configuration_contributes_nothing() {
        let report = GpuStress::none().run(60.0);
        assert_eq!(report.avg_power_w, 0.0);
        assert_eq!(report.dgemm_iterations, 0);
    }

    #[test]
    fn host_init_lowers_short_window_average() {
        let dev = GpuStress::four_k80().run(20.0);
        let host = GpuStress::four_k80()
            .with_strategy(InitStrategy::HostThenTransfer)
            .run(20.0);
        assert!(dev.avg_power_w > host.avg_power_w);
        assert!(host.init_time_s > dev.init_time_s);
    }
}
