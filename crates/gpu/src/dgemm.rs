//! Blocked double-precision matrix multiply.
//!
//! The actual arithmetic the simulated device "executes". Kept small but
//! real: the device model charges `2·m·n·k` FLOPs per call, and the
//! correctness tests pin the blocked implementation against a naive
//! reference so the substrate is trustworthy.

/// C ← C + A·B for row-major square matrices, naive triple loop
/// (reference implementation).
pub fn dgemm_naive(n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
}

/// C ← C + A·B, cache-blocked (the shape a cuBLAS kernel tiles into
/// shared memory; also exactly what HPL's inner kernel does).
pub fn dgemm_blocked(n: usize, block: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert!(block > 0);
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    for ii in (0..n).step_by(block) {
        for kk in (0..n).step_by(block) {
            for jj in (0..n).step_by(block) {
                let i_end = (ii + block).min(n);
                let k_end = (kk + block).min(n);
                let j_end = (jj + block).min(n);
                for i in ii..i_end {
                    for k in kk..k_end {
                        let aik = a[i * n + k];
                        for j in jj..j_end {
                            c[i * n + j] += aik * b[k * n + j];
                        }
                    }
                }
            }
        }
    }
}

/// FLOPs of one `n×n×n` DGEMM.
pub fn dgemm_flops(n: u64) -> u64 {
    2 * n * n * n
}

/// Deterministic matrix fill (the "init on device" kernel): value pattern
/// avoids trivial operands — the same §III-D rule applies to GPUs
/// (Lucas et al. showed the ALU data dependence).
pub fn fill_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.max(1);
    (0..n * n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let u = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
            0.5 + u // in [0.5, 1.5): never 0, never huge
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn blocked_matches_naive() {
        for (n, block) in [(8, 4), (16, 5), (17, 4), (32, 8), (33, 16)] {
            let a = fill_matrix(n, 1);
            let b = fill_matrix(n, 2);
            let mut c1 = vec![0.0; n * n];
            let mut c2 = vec![0.0; n * n];
            dgemm_naive(n, &a, &b, &mut c1);
            dgemm_blocked(n, block, &a, &b, &mut c2);
            assert!(
                max_abs_diff(&c1, &c2) < 1e-9,
                "mismatch for n={n}, block={block}"
            );
        }
    }

    #[test]
    fn accumulates_into_c() {
        let n = 4;
        let a = fill_matrix(n, 3);
        let b = fill_matrix(n, 4);
        let mut c = vec![1.0; n * n];
        let mut expected = vec![1.0; n * n];
        dgemm_naive(n, &a, &b, &mut expected);
        dgemm_blocked(n, 2, &a, &b, &mut c);
        assert!(max_abs_diff(&expected, &c) < 1e-12);
    }

    #[test]
    fn flop_count() {
        assert_eq!(dgemm_flops(10), 2000);
        assert_eq!(dgemm_flops(1000), 2_000_000_000);
    }

    #[test]
    fn fill_is_deterministic_and_nontrivial() {
        let m1 = fill_matrix(16, 42);
        let m2 = fill_matrix(16, 42);
        assert_eq!(m1, m2);
        assert!(m1.iter().all(|&x| (0.5..1.5).contains(&x)));
        let m3 = fill_matrix(16, 43);
        assert_ne!(m1, m3);
    }

    #[test]
    fn block_larger_than_matrix_is_fine() {
        let n = 6;
        let a = fill_matrix(n, 5);
        let b = fill_matrix(n, 6);
        let mut c1 = vec![0.0; n * n];
        let mut c2 = vec![0.0; n * n];
        dgemm_naive(n, &a, &b, &mut c1);
        dgemm_blocked(n, 64, &a, &b, &mut c2);
        assert!(max_abs_diff(&c1, &c2) < 1e-12);
    }
}
