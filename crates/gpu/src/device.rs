//! The simulated accelerator.

/// Static device description.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    pub name: &'static str,
    /// Peak double-precision rate, GFLOP/s.
    pub fp64_gflops: f64,
    /// Fraction of peak a large DGEMM sustains.
    pub dgemm_efficiency: f64,
    /// Device memory, bytes.
    pub mem_bytes: u64,
    /// Device memory bandwidth, GB/s.
    pub mem_bw_gbps: f64,
    /// Host↔device link bandwidth, GB/s (PCIe 3.0 x16 ≈ 12 GB/s).
    pub pcie_bw_gbps: f64,
    /// Host-side matrix generation rate, GB/s (single-threaded fill).
    pub host_fill_gbps: f64,
    /// Idle contribution to node power (Fig. 2: 29 W for a K80).
    pub idle_w: f64,
    /// Stressed contribution to node power (Fig. 2: 156 W).
    pub stress_w: f64,
}

impl GpuSpec {
    /// NVIDIA Tesla K80 (one card as measured in Fig. 2).
    pub fn k80() -> GpuSpec {
        GpuSpec {
            name: "NVIDIA Tesla K80",
            fp64_gflops: 1870.0,
            dgemm_efficiency: 0.80,
            mem_bytes: 12 * 1024 * 1024 * 1024,
            mem_bw_gbps: 240.0,
            pcie_bw_gbps: 12.0,
            host_fill_gbps: 4.0,
            idle_w: 29.0,
            stress_w: 156.0,
        }
    }
}

/// Where the DGEMM input matrices are created (§III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// FIRESTARTER ≤ 1.x: fill on the host, copy over PCIe.
    HostThenTransfer,
    /// FIRESTARTER 2: generate directly on the device.
    OnDevice,
}

/// A simulated GPU instance.
#[derive(Debug, Clone)]
pub struct GpuDevice {
    pub spec: GpuSpec,
}

impl GpuDevice {
    pub fn new(spec: GpuSpec) -> GpuDevice {
        GpuDevice { spec }
    }

    /// Largest square `n` such that three `n×n` f64 matrices fill the
    /// given fraction of device memory (FIRESTARTER sizes DGEMM to the
    /// card).
    pub fn matrix_dim_for_memory(&self, fraction: f64) -> u64 {
        assert!((0.0..=1.0).contains(&fraction));
        let usable = self.spec.mem_bytes as f64 * fraction;
        (usable / (3.0 * 8.0)).sqrt() as u64
    }

    /// Seconds to produce the two input matrices (3 allocations, 2 filled;
    /// C is zeroed on device either way).
    pub fn init_time_s(&self, n: u64, strategy: InitStrategy) -> f64 {
        let bytes = 2.0 * (n * n * 8) as f64;
        match strategy {
            InitStrategy::HostThenTransfer => {
                // Fill in host memory, then cross PCIe.
                bytes / (self.spec.host_fill_gbps * 1e9) + bytes / (self.spec.pcie_bw_gbps * 1e9)
            }
            InitStrategy::OnDevice => {
                // A trivially parallel fill kernel at memory bandwidth.
                bytes / (self.spec.mem_bw_gbps * 1e9)
            }
        }
    }

    /// Seconds for one `n³` DGEMM at sustained rate.
    pub fn dgemm_time_s(&self, n: u64) -> f64 {
        let flops = crate::dgemm::dgemm_flops(n) as f64;
        flops / (self.spec.fp64_gflops * 1e9 * self.spec.dgemm_efficiency)
    }

    /// Device power while running compute at the given utilization.
    pub fn power_w(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.spec.idle_w + (self.spec.stress_w - self.spec.idle_w) * u
    }

    /// Average power over a window that starts with initialization and
    /// then loops DGEMM back-to-back.
    pub fn avg_power_over(&self, window_s: f64, n: u64, strategy: InitStrategy) -> f64 {
        assert!(window_s > 0.0);
        let init = self.init_time_s(n, strategy).min(window_s);
        // During init the SMs idle (fill is bandwidth-bound, low power);
        // charge a small utilization for the on-device fill kernel.
        let init_util = match strategy {
            InitStrategy::HostThenTransfer => 0.0,
            InitStrategy::OnDevice => 0.15,
        };
        let stress = window_s - init;
        (self.power_w(init_util) * init + self.power_w(1.0) * stress) / window_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k80() -> GpuDevice {
        GpuDevice::new(GpuSpec::k80())
    }

    #[test]
    fn matrix_sizing_fills_memory() {
        let d = k80();
        let n = d.matrix_dim_for_memory(0.9);
        let bytes = 3 * n * n * 8;
        assert!(bytes <= d.spec.mem_bytes);
        // Within 1 % of the target footprint.
        assert!(bytes as f64 > d.spec.mem_bytes as f64 * 0.9 * 0.98);
    }

    #[test]
    fn device_init_is_much_faster_than_host_init() {
        let d = k80();
        let n = d.matrix_dim_for_memory(0.9);
        let host = d.init_time_s(n, InitStrategy::HostThenTransfer);
        let dev = d.init_time_s(n, InitStrategy::OnDevice);
        assert!(host / dev > 10.0, "host {host:.3} s vs device {dev:.3} s");
    }

    #[test]
    fn power_endpoints_match_fig2() {
        let d = k80();
        assert_eq!(d.power_w(0.0), 29.0);
        assert_eq!(d.power_w(1.0), 156.0);
        assert!(d.power_w(0.5) > 29.0 && d.power_w(0.5) < 156.0);
        // Clamped outside [0, 1].
        assert_eq!(d.power_w(2.0), 156.0);
    }

    #[test]
    fn on_device_init_raises_average_power_in_short_windows() {
        // The §III-D improvement: less time stuck at idle power.
        let d = k80();
        let n = d.matrix_dim_for_memory(0.9);
        let host_avg = d.avg_power_over(30.0, n, InitStrategy::HostThenTransfer);
        let dev_avg = d.avg_power_over(30.0, n, InitStrategy::OnDevice);
        assert!(
            dev_avg > host_avg + 1.0,
            "host {host_avg:.1} W vs device {dev_avg:.1} W"
        );
        // Both converge for very long windows.
        let host_long = d.avg_power_over(3600.0, n, InitStrategy::HostThenTransfer);
        let dev_long = d.avg_power_over(3600.0, n, InitStrategy::OnDevice);
        assert!((host_long - dev_long).abs() < 1.0);
    }

    #[test]
    fn dgemm_time_scales_cubically() {
        let d = k80();
        let t1 = d.dgemm_time_s(1000);
        let t2 = d.dgemm_time_s(2000);
        assert!((t2 / t1 - 8.0).abs() < 1e-9);
    }
}
