//! # fs2-gpu — simulated GPGPU stress substrate
//!
//! "To stress NVIDIA GPUs, FIRESTARTER uses the DGEMM routines of
//! NVIDIA's cuBLAS library. However, the initialization of these matrices
//! was inefficient as they were initialized at the host and then
//! transferred to the GPU. In the new version, data is initialized
//! directly on the GPU." (§III-D)
//!
//! Fig. 2 quantifies the device contribution on the Haswell+GPGPU node:
//! each NVIDIA K80 adds **29 W idle** and up to **156 W under stress**.
//!
//! No GPU is available in this environment, so this crate provides:
//!
//! * [`dgemm`] — a real blocked double-precision matrix multiply (the
//!   computation cuBLAS would run), correctness-tested against a naive
//!   reference; the device model charges FLOPs from it.
//! * [`device`] — the simulated accelerator: FP64 peak rate, memory
//!   capacity/bandwidth, PCIe link, idle/stress power, and the
//!   host-init vs. device-init data-placement paths whose difference
//!   motivated the §III-D change.
//! * [`stress`] — the FIRESTARTER-side driver: matrix sizing to fill
//!   device memory, the init phase, and the steady DGEMM loop, yielding
//!   average power over a measurement window.

pub mod device;
pub mod dgemm;
pub mod stress;

pub use device::{GpuDevice, GpuSpec, InitStrategy};
pub use stress::{GpuStress, GpuStressReport};
