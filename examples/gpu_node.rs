//! The Fig. 2 GPGPU node: a dual-socket Haswell system with four Tesla
//! K80 cards, comparing the §III-D matrix-initialization strategies.
//!
//! ```sh
//! cargo run --example gpu_node
//! ```

use firestarter2::gpu::device::GpuSpec;
use firestarter2::gpu::GpuDevice;
use firestarter2::prelude::*;

fn main() {
    let sku = Sku::intel_xeon_e5_2680_v3();
    let mix = MixRegistry::default_for(sku.uarch);
    let groups = parse_groups("REG:6,L1_2LS:2,L2_LS:1,L3_L:1,RAM_L:1").unwrap();
    let unroll = default_unroll(&sku, mix, &groups);
    let payload = build_payload(
        &sku,
        &PayloadConfig {
            mix,
            groups,
            unroll,
        },
    );

    for (label, strategy, window) in [
        ("device-init, 240 s window", InitStrategy::OnDevice, 240.0),
        (
            "host-init,   240 s window",
            InitStrategy::HostThenTransfer,
            240.0,
        ),
        ("device-init,  20 s window", InitStrategy::OnDevice, 20.0),
        (
            "host-init,    20 s window",
            InitStrategy::HostThenTransfer,
            20.0,
        ),
    ] {
        let gpus = GpuStress {
            devices: (0..4).map(|_| GpuDevice::new(GpuSpec::k80())).collect(),
            strategy,
            mem_fraction: 0.9,
        };
        let report = gpus.run(window);

        let mut runner = Runner::new(sku.clone());
        let r = runner.run(
            &payload,
            &RunConfig {
                freq_mhz: 2000.0, // paper: 2000 MHz to avoid AVX throttling
                duration_s: window,
                start_delta_s: (window * 0.2).min(120.0),
                stop_delta_s: 2.0,
                external_w: report.avg_power_w,
                ..RunConfig::default()
            },
        );
        println!(
            "{label}: node {:6.1} W  (CPU part {:6.1} W, 4x K80 {:6.1} W, init {:4.2} s, n={})",
            r.power.mean,
            r.power.mean - report.avg_power_w,
            report.avg_power_w,
            report.init_time_s,
            report.matrix_n
        );
    }
    println!("\nFig. 2 reference: each K80 adds 29 W idle / 156 W stressed.");
}
