//! §III-D features: register dump to verify SIMD correctness out of
//! spec, and cross-core error detection catching silent data corruption.
//!
//! ```sh
//! cargo run --example error_detection
//! ```

use firestarter2::prelude::*;

fn main() {
    let sku = Sku::amd_epyc_7502();
    let mix = MixRegistry::default_for(sku.uarch);
    let groups = parse_groups("REG:2,L1_LS:1").unwrap();
    let unroll = default_unroll(&sku, mix, &groups);
    let payload = build_payload(
        &sku,
        &PayloadConfig {
            mix,
            groups,
            unroll,
        },
    );
    let mut runner = Runner::new(sku);

    let cfg = RunConfig {
        freq_mhz: 1500.0,
        duration_s: 10.0,
        start_delta_s: 2.0,
        stop_delta_s: 1.0,
        error_detection: true,
        dump_registers: true,
        ..RunConfig::default()
    };

    // Clean run: all cores compute identical register states.
    let r = runner.run(&payload, &cfg);
    println!(
        "clean run: error check {}",
        if r.error_check_passed == Some(true) {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!("first register lines of the dump:");
    for line in r.register_dump.as_deref().unwrap_or("").lines().take(3) {
        println!("  {line}");
    }

    // Simulated overclocking fault: one flipped mantissa bit on core 1.
    runner.inject_fault_next_run(1, 4, 52);
    let r = runner.run(&payload, &cfg);
    println!("\nafter injecting a single bit flip (reg ymm4, lane 1, bit 52):");
    println!(
        "error check {}",
        if r.error_check_passed == Some(false) {
            "FAIL — divergence detected, as it should be"
        } else {
            "PASS (bug: corruption went unnoticed!)"
        }
    );
}
