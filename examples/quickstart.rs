//! Quickstart: detect the processor, generate the default stress
//! workload at runtime, run it, and print the measurement summary.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use firestarter2::prelude::*;

fn main() {
    // FIRESTARTER 2 starts by identifying the CPU (Fig. 5: the binary
    // carries only mix definitions; the workload is generated now).
    let id = CpuId::amd_rome();
    let sku = detect(&id);
    println!(
        "detected: {} -> {} ({})",
        id.brand,
        sku.name,
        sku.uarch.name()
    );

    // The default instruction set for this architecture, the paper's
    // example access groups, and an L1I-resident unroll factor.
    let mix = MixRegistry::default_for(sku.uarch);
    let groups = parse_groups("REG:4,L1_L:2,L2_L:1").expect("valid groups");
    let unroll = default_unroll(&sku, mix, &groups);
    println!(
        "workload: I={} M={} u={unroll}",
        mix.name,
        format_groups(&groups)
    );

    // The engine memoizes payload builds and hands out measurement
    // sessions; everything downstream (CLI, experiments, tuning) runs
    // through this same pipeline.
    let engine = Engine::new(sku);
    let payload = engine.payload(&PayloadConfig {
        mix,
        groups,
        unroll,
    });
    println!(
        "generated {} instructions / {} bytes of machine code per loop",
        payload.kernel.insts(),
        payload.machine_code.len()
    );

    // Run for 60 simulated seconds at the nominal frequency.
    let result = engine.session().run_payload(
        &payload,
        &RunConfig {
            duration_s: 60.0,
            ..RunConfig::default()
        },
    );

    println!(
        "power: {:.1} W (min {:.1}, max {:.1}) over {:.0} s window",
        result.power.mean, result.power.min, result.power.max, result.power.window_s
    );
    println!(
        "applied frequency: {:.0} MHz{}   IPC: {:.2}",
        result.applied_freq_mhz,
        if result.throttled {
            " (EDC throttled)"
        } else {
            ""
        },
        result.ipc
    );
}
