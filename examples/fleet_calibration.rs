//! Trace-driven fleet cloning end to end: synthesize a target trace
//! from the pinned exemplar profile, calibrate a clone against it,
//! and print the fitted profile plus the fidelity report.
//!
//! ```sh
//! cargo run --release --example fleet_calibration
//! ```

use firestarter2::calib::{calibrate, CalibConfig, FleetProfile, Trace};
use firestarter2::cluster::{FleetConfig, FleetSim, TemporalMode};

fn main() {
    // The "real installation": a fleet driven by a profile the
    // calibrator never sees directly — only through its trace.
    let truth = FleetProfile::exemplar();
    let mut cfg = FleetConfig {
        samples_per_node: 1200,
        seed: 0x7AC3_D00D,
        temporal: TemporalMode::Episodes,
        ..FleetConfig::taurus_haswell_scaled(96)
    };
    truth.apply(&mut cfg);
    let run = FleetSim::new(cfg.clone()).run();
    let trace = Trace::from_fleet(&cfg, &run.samples);
    println!(
        "target trace: {} nodes, {} ticks, labeled = {}",
        trace.nodes().len(),
        trace.n_ticks(),
        trace.is_labeled()
    );

    let result = calibrate(&trace, &CalibConfig::default()).expect("trace is well-formed");
    println!(
        "calibrated in {} evaluations ({} duplicate-genome hits)\n",
        result.evaluations, result.nsga_cache_hits
    );
    println!("{}", result.report.render());
    println!("fitted profile:\n{}", result.profile.to_text());
}
