//! Fleet-as-a-service: the Fig. 1 pipeline served as a long-running
//! request/shard/engine stack instead of a one-shot run — several
//! tenants, one shared engine-cache tier, bounded admission.
//!
//! ```sh
//! cargo run --example fleet_service
//! ```

use firestarter2::service::{
    serve, AdmissionConfig, Broker, ChaosConfig, FleetReply, FleetRequest, FleetService,
    ServiceConfig,
};
use std::sync::Arc;

fn main() {
    let service = Arc::new(FleetService::new(ServiceConfig {
        workers: 4,
        default_shards: 4,
        admission: AdmissionConfig {
            max_active: 2,
            max_queue: 8,
            ..AdmissionConfig::default()
        },
        chaos: ChaosConfig::default(), // off; see the chaos section below
    }));

    // Transport 1: the in-process broker (what the CLI's --fleet uses).
    let broker = Broker::new(Arc::clone(&service), 2);
    let req = FleetRequest {
        nodes: 64,
        samples_per_node: 240,
        seed: Some(42),
        ..FleetRequest::fig1()
    };
    let line = broker.call(req.to_line()).expect("broker reply");
    let first = FleetReply::from_line(&line).expect("decode");
    println!(
        "request 1: {} samples over {} shards, {} engines, {} payloads built",
        first.samples.len(),
        first.shards,
        first.registry.engines,
        first.registry.payload_misses
    );

    // The same configuration again: the second tenant re-serves the
    // warmed payload/exec tier instead of rebuilding it.
    let line = broker.call(req.to_line()).expect("broker reply");
    let second = FleetReply::from_line(&line).expect("decode");
    println!(
        "request 2: cross-request payload hit rate {:.2}, exec hit rate {:.2}",
        second.registry.cross_payload_hit_rate(),
        second.registry.cross_exec_hit_rate()
    );
    assert_eq!(
        first.samples, second.samples,
        "identical requests must produce identical samples"
    );

    // Transport 2: plain TCP JSON-lines (the CLI's --serve/--connect).
    let server = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    let line = firestarter2::service::call(&addr, &req.to_line()).expect("tcp round trip");
    let served = FleetReply::from_line(&line).expect("decode");
    println!(
        "request 3 (TCP {addr}): {} samples, bitwise equal to request 1: {}",
        served.samples.len(),
        served.samples == first.samples
    );

    // Admission control: a deliberately oversized request is rejected
    // before any engine work happens.
    let bomb = FleetRequest {
        nodes: u32::MAX,
        samples_per_node: u32::MAX,
        ..FleetRequest::fig1()
    };
    let reply = service.handle(&bomb);
    println!(
        "oversize request: ok={} ({})",
        reply.ok,
        reply.error.as_deref().unwrap_or("-")
    );
    let stats = service.admission_stats();
    println!(
        "admission: {} admitted, {} queued, {} shed, {} rejected oversize",
        stats.admitted, stats.queued, stats.shed_busy, stats.rejected_oversize
    );

    // Fault tolerance: a second service with seeded chaos on. Request
    // #2 gets a worker panic injected into one shard; the reply is a
    // typed failure, the pool self-heals, and the retry reproduces the
    // undisturbed bytes exactly — the injection schedule is
    // deterministic and the samples are pure.
    let chaotic = FleetService::new(ServiceConfig {
        workers: 4,
        default_shards: 4,
        admission: AdmissionConfig::default(),
        chaos: ChaosConfig {
            seed: 7,
            panic_every: 2,
            ..ChaosConfig::default()
        },
    });
    let ok1 = chaotic.handle(&req);
    let hurt = chaotic.handle(&req);
    let retry = chaotic.handle(&req);
    println!(
        "chaos: request 1 ok={}, request 2 ok={} [{}], retry ok={} and bitwise equal: {}",
        ok1.ok,
        hurt.ok,
        hurt.error_kind.as_deref().unwrap_or("-"),
        retry.ok,
        retry.samples == first.samples
    );
    let pool = chaotic.pool_stats();
    println!(
        "supervision: {} panics caught, {} workers respawned, {} live",
        pool.panics_caught, pool.workers_respawned, pool.live_workers
    );

    // Deadlines: with a cost model configured, an unmeetable deadline
    // is rejected before any engine work.
    let screened = FleetService::new(ServiceConfig {
        admission: AdmissionConfig {
            cost_per_ms: 10,
            ..AdmissionConfig::default()
        },
        ..ServiceConfig::small()
    });
    let reply = screened.handle(&FleetRequest {
        deadline_ms: Some(1),
        ..req.clone()
    });
    println!(
        "deadline screen: ok={} [{}] ({})",
        reply.ok,
        reply.error_kind.as_deref().unwrap_or("-"),
        reply.error.as_deref().unwrap_or("-")
    );
}
