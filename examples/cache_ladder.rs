//! The Fig. 9 experiment in miniature: add memory levels one at a time
//! and watch node power climb while IPC sags.
//!
//! ```sh
//! cargo run --example cache_ladder
//! ```

use firestarter2::prelude::*;

fn main() {
    let sku = Sku::amd_epyc_7502();
    let mut runner = Runner::new(sku);

    // Hand-tuned per-rung workloads; the fig09 bench derives the real
    // optima via NSGA-II.
    let ladder = [
        ("No access", "REG:1"),
        ("Level 1", "REG:4,L1_2LS:3"),
        ("Level 2", "REG:4,L1_2LS:2,L2_LS:1"),
        ("Level 3", "REG:6,L1_2LS:3,L2_LS:1,L3_LS:1"),
        ("Main memory", "REG:8,L1_2LS:4,L2_LS:1,L3_LS:1,RAM_LS:1"),
    ];

    println!(
        "{:<12} {:>9} {:>7} {:>18}",
        "access up to", "power [W]", "IPC", "DC accesses/cycle"
    );
    let mut first = None;
    let mut last = 0.0;
    for (name, spec) in ladder {
        let groups = parse_groups(spec).unwrap();
        let mix = MixRegistry::default_for(runner.sku().uarch);
        let unroll = default_unroll(runner.sku(), mix, &groups);
        let payload = build_payload(
            runner.sku(),
            &PayloadConfig {
                mix,
                groups,
                unroll,
            },
        );
        let r = runner.run(
            &payload,
            &RunConfig {
                freq_mhz: 1500.0, // avoid EDC throttling, like the paper
                duration_s: 30.0,
                start_delta_s: 5.0,
                stop_delta_s: 2.0,
                ..RunConfig::default()
            },
        );
        println!(
            "{:<12} {:>9.1} {:>7.2} {:>18.2}",
            name, r.power.mean, r.ipc, r.dc_access_rate
        );
        first.get_or_insert(r.power.mean);
        last = r.power.mean;
    }
    let first = first.unwrap();
    println!(
        "\nREG-only -> RAM: {:.1} W -> {:.1} W  (+{:.0} %; paper: 235 W -> 437 W, +86 %)",
        first,
        last,
        (last / first - 1.0) * 100.0
    );
}
