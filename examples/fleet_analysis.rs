//! The Fig. 1 pipeline: simulate a year of the 612-node Haswell fleet
//! through real per-node engines and print the cumulative power
//! distribution — the motivation for stress tests.
//!
//! ```sh
//! cargo run --example fleet_analysis
//! ```

use firestarter2::cluster::{BudgetPolicy, FleetConfig, FleetSim, PowerCdf, TemporalMode};

fn main() {
    let fleet = FleetSim::new(FleetConfig::default());
    let run = fleet.run();
    let cdf = PowerCdf::from_samples(&run.samples, 0.1);

    println!(
        "{} nodes x {} sixty-second means = {} samples",
        fleet.config.total_nodes(),
        fleet.config.samples_per_node,
        cdf.samples
    );
    println!(
        "engine-backed: {} engines, {} payloads, {} operating points:",
        run.registry.engines,
        run.registry.payload_misses,
        run.power_table.len()
    );
    for row in &run.power_table {
        println!(
            "  {:<28} {:<7} {:>4} MHz (applied {:>4.0}) -> {:6.1} W",
            row.sku, row.class, row.freq_mhz, row.applied_mhz, row.watts
        );
    }
    println!("power range: {:.1} W .. {:.1} W", cdf.min_w, cdf.max_w);
    println!("\n  power [W]   cumulative fraction");
    for w in [60.0, 80.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 359.9] {
        println!("  {:>8.1}   {:>6.3}", w, cdf.fraction_at(w));
    }
    println!(
        "\nmedian {:.1} W, p95 {:.1} W, p99.9 {:.1} W",
        cdf.quantile(0.5),
        cdf.quantile(0.95),
        cdf.quantile(0.999)
    );
    println!(
        "-> the infrastructure must still be sized for the {:.1} W worst case",
        cdf.max_w
    );

    // The time-correlated variant: the same operating points sampled
    // through Markov job episodes (dwell, ramps, idle hand-backs).
    let episodes = FleetSim::new(FleetConfig {
        temporal: TemporalMode::Episodes,
        ..FleetConfig::default()
    })
    .run();
    let stats = episodes.episodes.expect("episode stats");
    println!(
        "\nepisode mode: lag-1 autocorrelation {:.3} (i.i.d. would be ~0)",
        stats.lag1_autocorr
    );
    for ((state, share), dwell) in stats
        .states
        .iter()
        .zip(&stats.empirical_shares)
        .zip(&stats.mean_dwell_ticks)
    {
        println!(
            "  {state:<8} {:5.1} % of node time, mean episode {dwell:.1} min",
            share * 100.0
        );
    }

    // Facility power management: cap the fleet-wide *sum* of draws per
    // 60 s tick and shed over-budget episodes to the idle floor.
    let budget_w = 90_000.0;
    for policy in [BudgetPolicy::ShedToFloor, BudgetPolicy::Defer] {
        let run = FleetSim::new(FleetConfig {
            temporal: TemporalMode::Episodes,
            budget_w: Some(budget_w),
            budget_policy: policy,
            ..FleetConfig::default()
        })
        .run();
        let b = run.budget.expect("budget stats");
        println!(
            "\nfleet budget {:.0} kW ({}): peak draw {:.1} kW, mean {:.1} kW, \
             p95 utilization {:.1} %",
            budget_w / 1000.0,
            b.policy.name(),
            b.peak_fleet_w / 1000.0,
            b.mean_fleet_w / 1000.0,
            b.utilization.quantile(0.95) * 100.0
        );
        let shed: u64 = b.shed_ticks.iter().sum();
        let deferred: u64 = b.deferred_ticks.iter().sum();
        println!(
            "  {shed} node-ticks shed, {deferred} deferred, {} truncated past the horizon",
            b.truncated_proposals
        );
    }
}
