//! Self-tuning on the AMD Rome node (§IV-E), scaled down from the
//! paper's `--individuals=40 --generations=20` so the example finishes in
//! seconds of host time (the full configuration runs in the benches).
//!
//! ```sh
//! cargo run --release --example autotune_rome
//! ```

use firestarter2::prelude::*;

fn main() {
    let sku = Sku::amd_epyc_7502();
    let mut runner = Runner::new(sku);

    let cfg = TuneConfig {
        nsga2: Nsga2Config {
            individuals: 16,
            generations: 8,
            mutation_prob: 0.35, // --nsga2-m=0.35
            crossover_prob: 0.9,
            seed: 42,
        },
        test_duration_s: 10.0, // -t 10
        preheat_s: 240.0,      // --preheat=240
        freq_mhz: 1500.0,
        ..TuneConfig::default()
    };

    println!(
        "tuning on {} at {} MHz: {} individuals x {} generations, preheat {} s",
        runner.sku().name,
        cfg.freq_mhz,
        cfg.nsga2.individuals,
        cfg.nsga2.generations,
        cfg.preheat_s
    );

    let result = AutoTuner::run(&mut runner, &cfg);

    println!(
        "\n{} evaluations ({} cache hits); final Pareto front:",
        result.nsga2.history.len(),
        result.nsga2.cache_hits
    );
    let mut front = result.nsga2.front.clone();
    front.sort_by(|a, b| b.objectives[0].total_cmp(&a.objectives[0]));
    for ind in front.iter().take(8) {
        println!(
            "  {:7.1} W  {:5.3} ipc  {}",
            ind.objectives[0],
            ind.objectives[1],
            format_groups(&firestarter2::core::autotune::genes_to_groups(&ind.genes))
        );
    }
    println!(
        "\nselected optimum ω_opt: --run-instruction-groups={} --set-line-count={}",
        format_groups(&result.best_groups),
        result.unroll
    );
    println!(
        "total simulated tuning time: {:.0} s (Fig. 7: no idle gaps between candidates)",
        runner.clock().now_secs()
    );
}
