//! Golden-file tests for the fleet-profile format: the pinned
//! exemplar in `tests/data/exemplar.profile` is the wire-format
//! contract. Any change to the canonical writer or to
//! `FleetProfile::exemplar()` must be deliberate — regenerate the
//! pinned file and re-measure the self-clone fidelity numbers in CI
//! and ROADMAP.md when it changes.

use firestarter2::calib::{FleetProfile, ProfileError};

const PINNED: &str = include_str!("data/exemplar.profile");

#[test]
fn pinned_exemplar_matches_the_builtin_profile_byte_for_byte() {
    assert_eq!(
        FleetProfile::exemplar().to_text(),
        PINNED,
        "exemplar profile drifted from tests/data/exemplar.profile"
    );
}

#[test]
fn load_write_load_is_byte_identical() {
    let loaded = FleetProfile::from_text(PINNED).unwrap();
    let written = loaded.to_text();
    assert_eq!(written, PINNED, "writer is not the inverse of the loader");
    let reloaded = FleetProfile::from_text(&written).unwrap();
    assert_eq!(reloaded.to_text(), written);
    assert_eq!(reloaded, loaded);
}

#[test]
fn pinned_exemplar_validates_and_builds_a_model() {
    let p = FleetProfile::from_text(PINNED).unwrap();
    p.validate().unwrap();
    let mix = p.to_mix();
    let model = p.to_model(&mix);
    // Stationary shares of the synthesized model are the profile's
    // weights (floor included) — the from_mix contract.
    let shares = model.stationary_time_shares();
    assert!((shares[0] - p.floor_share).abs() < 1e-9);
    let total: f64 = p.classes.iter().map(|c| c.weight).sum();
    for (i, c) in p.classes.iter().enumerate() {
        let want = (1.0 - p.floor_share) * c.weight / total;
        assert!((shares[i + 1] - want).abs() < 1e-9, "class {}", c.name);
    }
}

#[test]
fn malformed_profiles_are_rejected_with_typed_errors() {
    // Wrong header line.
    assert!(matches!(
        FleetProfile::from_text("# not a profile\n").unwrap_err(),
        ProfileError::MissingHeader
    ));

    // NaN / infinite values never pass the number parser.
    let nan = PINNED.replace("floor_share = 0.15", "floor_share = NaN");
    assert!(matches!(
        FleetProfile::from_text(&nan).unwrap_err(),
        ProfileError::BadValue { .. }
    ));
    let inf = PINNED.replace("weight = 0.25", "weight = inf");
    assert!(matches!(
        FleetProfile::from_text(&inf).unwrap_err(),
        ProfileError::BadValue { .. }
    ));

    // Non-stochastic: class weights that sum to zero.
    let zeroed = PINNED
        .replace("weight = 0.25", "weight = 0")
        .replace("weight = 0.2", "weight = 0")
        .replace("weight = 0.15", "weight = 0");
    assert!(matches!(
        FleetProfile::from_text(&zeroed).unwrap_err(),
        ProfileError::NonStochastic
    ));

    // Out-of-range floor share.
    let hot = PINNED.replace("floor_share = 0.15", "floor_share = 1.5");
    assert!(matches!(
        FleetProfile::from_text(&hot).unwrap_err(),
        ProfileError::BadFloorShare { .. }
    ));

    // Unknown class name and duplicate class sections.
    let unknown = PINNED.replace("[class peak]", "[class warp]");
    assert!(matches!(
        FleetProfile::from_text(&unknown).unwrap_err(),
        ProfileError::UnknownClass { .. }
    ));
    let dup = PINNED.replace("[class peak]", "[class idle]");
    assert!(matches!(
        FleetProfile::from_text(&dup).unwrap_err(),
        ProfileError::DuplicateClass { .. }
    ));

    // A P-state set outside the supported catalogue.
    let pstates = PINNED.replace("pstates = 0 1", "pstates = 2 0");
    assert!(matches!(
        FleetProfile::from_text(&pstates).unwrap_err(),
        ProfileError::UnknownPstates { .. }
    ));
}
