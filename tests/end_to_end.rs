//! Cross-crate integration: payload generation → simulation → power,
//! checked against the paper's landmark numbers.

use firestarter2::prelude::*;

fn payload(sku: &Sku, spec: &str) -> Payload {
    let mix = MixRegistry::default_for(sku.uarch);
    let groups = parse_groups(spec).unwrap();
    let unroll = default_unroll(sku, mix, &groups);
    build_payload(
        sku,
        &PayloadConfig {
            mix,
            groups,
            unroll,
        },
    )
}

fn measure(runner: &mut Runner, spec: &str, freq: f64) -> RunResult {
    let p = payload(&runner.sku().clone(), spec);
    runner.run(
        &p,
        &RunConfig {
            freq_mhz: freq,
            duration_s: 30.0,
            start_delta_s: 5.0,
            stop_delta_s: 2.0,
            ..RunConfig::default()
        },
    )
}

/// §III-D: REG-only FMA mix at nominal ⇒ ≈ 314 W on the Rome node.
#[test]
fn landmark_reg_only_nominal_power() {
    let mut runner = Runner::new(Sku::amd_epyc_7502());
    runner.hold_power(240.0, 20.0, 310.0); // preheat
    let r = measure(&mut runner, "REG:1", 2500.0);
    assert!(
        (285.0..=355.0).contains(&r.power.mean),
        "REG:1 @2500 = {:.1} W, expected ≈314 W",
        r.power.mean
    );
}

/// Fig. 9: each added memory level increases node power; REG→RAM gains
/// roughly +86 % at 1500 MHz.
#[test]
fn landmark_fig9_ladder_monotone_and_magnitude() {
    let mut runner = Runner::new(Sku::amd_epyc_7502());
    runner.hold_power(240.0, 20.0, 300.0);
    let ladder = [
        "REG:1",
        "REG:4,L1_2LS:3",
        "REG:4,L1_2LS:2,L2_LS:1",
        "REG:6,L1_2LS:3,L2_LS:1,L3_LS:1",
        "REG:8,L1_2LS:4,L2_LS:1,L3_LS:1,RAM_LS:1",
    ];
    let mut prev = 0.0;
    let mut first = None;
    let mut last = 0.0;
    for spec in ladder {
        let r = measure(&mut runner, spec, 1500.0);
        assert!(
            r.power.mean > prev,
            "ladder not monotone at {spec}: {:.1} W after {prev:.1} W",
            r.power.mean
        );
        prev = r.power.mean;
        first.get_or_insert(r.power.mean);
        last = r.power.mean;
    }
    let gain = last / first.unwrap() - 1.0;
    assert!(
        (0.45..=1.3).contains(&gain),
        "REG→RAM gain {:.0} %, paper ≈86 %",
        gain * 100.0
    );
}

/// Fig. 9: IPC dips when memory levels are added, but stays near 3.4.
#[test]
fn landmark_fig9_ipc_dip() {
    let mut runner = Runner::new(Sku::amd_epyc_7502());
    let reg = measure(&mut runner, "REG:1", 1500.0);
    let ram = measure(
        &mut runner,
        "REG:8,L1_2LS:4,L2_LS:1,L3_LS:1,RAM_LS:1",
        1500.0,
    );
    assert!(reg.ipc > 3.9, "REG IPC = {}", reg.ipc);
    assert!(ram.ipc < reg.ipc, "no IPC dip");
    assert!(ram.ipc > 2.2, "IPC collapsed: {}", ram.ipc);
}

/// Fig. 12c / Fig. 8: cache-saturating workloads hit the EDC limit at
/// the higher P-states but never at 1500 MHz; the power-optimal
/// RAM-balanced mix stays below the limit yet delivers the most power.
#[test]
fn landmark_fig12_throttling_pattern() {
    let cache_heavy = "REG:10,L1_2LS:4,L2_LS:2,L3_LS:1,RAM_L:1";
    let balanced = "REG:8,L1_2LS:4,L2_LS:1,L3_LS:1,RAM_LS:1";
    let mut runner = Runner::new(Sku::amd_epyc_7502());

    // No throttling at the lowest P-state for either workload.
    assert!(!measure(&mut runner, cache_heavy, 1500.0).throttled);
    let bal_1500 = measure(&mut runner, balanced, 1500.0);
    assert!(!bal_1500.throttled);

    // The cache-saturating mix exceeds the EDC limit at nominal.
    let ch_2200 = measure(&mut runner, cache_heavy, 2200.0);
    let ch_2500 = measure(&mut runner, cache_heavy, 2500.0);
    assert!(ch_2500.throttled, "no EDC throttling at 2500 MHz");
    // At 2200 this hand-written spec sits just below the limit; any
    // throttling there must be mild (the tuned optima of Fig. 12 push
    // right to the boundary instead).
    assert!(ch_2200.applied_freq_mhz >= 2100.0);
    assert!(ch_2500.applied_freq_mhz < 2500.0);
    assert!(ch_2500.applied_freq_mhz > 1500.0);
    // Applied frequency is quantized to the 25 MHz step (§IV-E).
    assert_eq!(ch_2500.applied_freq_mhz % 25.0, 0.0);

    // Higher P-state still yields more power (Fig. 12a column ordering).
    let bal_2500 = measure(&mut runner, balanced, 2500.0);
    assert!(bal_2500.power.mean > bal_1500.power.mean + 40.0);
}

/// The generated machine code and the simulated kernel agree: decode the
/// code buffer back and re-derive the instruction counts.
#[test]
fn machine_code_and_kernel_agree() {
    let sku = Sku::amd_epyc_7502();
    let p = payload(&sku, "REG:4,L1_L:2,L2_L:1");
    let decoded = firestarter2::isa::decode_all(&p.machine_code).unwrap();
    // Code = prologue (pointer inits) + kernel body + ret; the kernel body
    // itself ends with dec+jnz.
    let prologue = p.used_levels().len();
    assert_eq!(decoded.len(), prologue + p.kernel.body.len() + 1);
    let body_decoded = &decoded[prologue..decoded.len() - 1];
    let kernel_insts: Vec<_> = p.kernel.insts_iter().copied().collect();
    // All but the back-edge (whose displacement the assembler resolves).
    assert_eq!(body_decoded.len(), kernel_insts.len());
    for (a, b) in body_decoded[..body_decoded.len() - 1]
        .iter()
        .zip(&kernel_insts[..kernel_insts.len() - 1])
    {
        assert_eq!(a, b);
    }
}

/// Legacy static workload (FIRESTARTER 1.x) is a valid but generally
/// weaker starting point than a tuned workload on the same node.
#[test]
fn tuned_beats_legacy_static() {
    let sku = Sku::amd_epyc_7502();
    let mut runner = Runner::new(sku.clone());
    runner.hold_power(240.0, 20.0, 300.0);

    let legacy = LegacyWorkload::for_sku(&sku).build(&sku);
    let legacy_r = runner.run(
        &legacy,
        &RunConfig {
            freq_mhz: 1500.0,
            duration_s: 30.0,
            start_delta_s: 5.0,
            stop_delta_s: 2.0,
            ..RunConfig::default()
        },
    );

    let tune = TuneConfig {
        nsga2: Nsga2Config {
            individuals: 10,
            generations: 5,
            mutation_prob: 0.35,
            crossover_prob: 0.9,
            seed: 21,
        },
        test_duration_s: 10.0,
        preheat_s: 0.0, // already hot
        freq_mhz: 1500.0,
        ..TuneConfig::default()
    };
    let tuned = AutoTuner::run(&mut runner, &tune);
    // With this tiny test population (10x5) NSGA-II may land slightly
    // below a well-chosen static workload; paper-scale runs (40x20, see
    // EXPERIMENTS.md) clear it. Require the tuned result to be within
    // 3 % — the legacy workload must not be *far* better.
    assert!(
        tuned.best.objectives[0] >= legacy_r.power.mean * 0.97,
        "tuned {:.1} W badly below legacy {:.1} W",
        tuned.best.objectives[0],
        legacy_r.power.mean
    );
}

/// RAPL counters integrate the same power the run reports.
#[test]
fn rapl_counters_track_run_power() {
    use firestarter2::power::rapl::Rapl;
    let sku = Sku::amd_epyc_7502();
    let mut runner = Runner::new(sku.clone());
    let r = measure(&mut runner, "REG:1", 1500.0);
    let mut rapl = Rapl::new(sku.topology.sockets, true);
    rapl.accumulate(&r.breakdown, 10.0);
    let core_w = r.breakdown.core_dynamic_w + r.breakdown.core_static_w;
    let expect_uj = (core_w * 10.0 * 1e6) as u64;
    let got = rapl.package_energy_uj();
    let rel = (got as f64 - expect_uj as f64).abs() / expect_uj as f64;
    assert!(rel < 0.01, "RAPL integration off by {:.2} %", rel * 100.0);
}
