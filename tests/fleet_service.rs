//! Service-stack integration: a served fleet request must be
//! byte-identical to the one-shot library run through every transport
//! (in-process broker, TCP JSON-lines), admission control must bound
//! concurrency without panicking, and the wire format must round-trip
//! seeds and samples exactly.

use firestarter2::cluster::{FleetSim, TemporalMode};
use firestarter2::service::{
    call, serve, AdmissionConfig, Broker, Client, FleetReply, FleetRequest, FleetService,
    ServiceConfig,
};
use std::sync::Arc;

fn bits(samples: &[f64]) -> Vec<u64> {
    samples.iter().map(|s| s.to_bits()).collect()
}

fn request(seed: u64) -> FleetRequest {
    FleetRequest {
        nodes: 16,
        samples_per_node: 80,
        seed: Some(seed),
        ..FleetRequest::fig1()
    }
}

#[test]
fn broker_round_trip_matches_the_library_run_bitwise() {
    let service = Arc::new(FleetService::new(ServiceConfig::small()));
    let broker = Broker::new(Arc::clone(&service), 2);
    for req in [
        request(17),
        FleetRequest {
            temporal: TemporalMode::Episodes,
            budget_w: Some(16.0 * 170.0),
            shards: Some(7),
            ..request(17)
        },
    ] {
        let direct = FleetSim::new(req.to_config()).run();
        let line = broker
            .call(req.to_line())
            .expect("broker dropped the request");
        let reply = FleetReply::from_line(&line).unwrap();
        assert!(reply.ok, "{:?}", reply.error);
        assert_eq!(
            bits(&direct.samples),
            bits(&reply.samples),
            "brokered samples diverged from the library run"
        );
    }
}

#[test]
fn tcp_clients_get_bitwise_identical_replies_concurrently() {
    let service = Arc::new(FleetService::new(ServiceConfig::small()));
    let server = serve(service, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    let direct = FleetSim::new(request(23).to_config()).run();
    let want = bits(&direct.samples);

    // Two concurrent clients, same request: both replies must carry the
    // exact sample bits (the registry is shared, the samples are pure).
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            let want = want.clone();
            std::thread::spawn(move || {
                let line = call(&addr, &request(23).to_line()).unwrap();
                let reply = FleetReply::from_line(&line).unwrap();
                assert!(reply.ok, "{:?}", reply.error);
                assert_eq!(want, bits(&reply.samples));
                reply
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // A persistent client can pipeline several requests on one socket,
    // and a malformed line gets a failure reply without dropping it.
    let mut client = Client::connect(&addr).unwrap();
    let garbage = client.request("not json at all").unwrap();
    let reply = FleetReply::from_line(&garbage);
    assert!(reply.is_err() || !reply.unwrap().ok);
    let line = client.request(&request(23).to_line()).unwrap();
    let reply = FleetReply::from_line(&line).unwrap();
    assert!(reply.ok);
    assert_eq!(want, bits(&reply.samples));
    // The cross-request counters accumulate from request #2 onward, and
    // the two concurrent requests raced each other into a cold cache, so
    // the rate is diluted — but the warm third request must still show
    // substantial reuse of the shared tier.
    assert!(
        reply.registry.cross_payload_hit_rate() > 0.5,
        "warm identical request missed the cache: {:?}",
        reply.registry
    );
    assert!(reply.registry.cross_exec_hit_rate() > 0.5);
}

#[test]
fn admission_bounds_an_overload_storm_without_panics() {
    let service = Arc::new(FleetService::new(ServiceConfig {
        workers: 2,
        default_shards: 2,
        admission: AdmissionConfig {
            max_active: 1,
            max_queue: 2,
            ..AdmissionConfig::default()
        },
        ..ServiceConfig::small()
    }));
    let req = FleetRequest {
        nodes: 8,
        samples_per_node: 40,
        seed: Some(5),
        ..FleetRequest::fig1()
    };
    let handles: Vec<_> = (0..12)
        .map(|_| {
            let service = Arc::clone(&service);
            let req = req.clone();
            std::thread::spawn(move || service.handle(&req))
        })
        .collect();
    let replies: Vec<FleetReply> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let ok = replies.iter().filter(|r| r.ok).count();
    let shed = replies
        .iter()
        .filter(|r| !r.ok && r.error.as_deref().unwrap_or("").contains("shed"))
        .count();
    assert_eq!(ok + shed, 12, "every request must resolve to ok or shed");
    assert!(ok >= 1, "at least the first request must be served");
    let stats = service.admission_stats();
    assert_eq!(stats.admitted as usize, ok);
    assert_eq!(stats.shed_busy as usize, shed);
    assert!(
        stats.peak_queue_depth <= 2,
        "queue bound violated: {stats:?}"
    );
    assert_eq!(stats.active, 0);
    assert_eq!(stats.queue_depth, 0);
    // Whatever was admitted produced the exact library bytes.
    let direct = FleetSim::new(req.to_config()).run();
    for r in replies.iter().filter(|r| r.ok) {
        assert_eq!(bits(&direct.samples), bits(&r.samples));
    }
}

#[test]
fn oversize_requests_are_rejected_before_any_work() {
    let service = FleetService::new(ServiceConfig {
        admission: AdmissionConfig {
            max_request_cost: 1_000,
            ..AdmissionConfig::default()
        },
        ..ServiceConfig::small()
    });
    // 16 × 80 = 1280 node·samples > 1000.
    let reply = service.handle(&request(1));
    assert!(!reply.ok);
    assert!(reply.error.as_deref().unwrap().contains("rejected"));
    // The u32::MAX × u32::MAX address-space bomb is caught by the
    // checked total, not a wrapping multiply.
    let reply = service.handle(&FleetRequest {
        nodes: u32::MAX,
        samples_per_node: u32::MAX,
        ..FleetRequest::fig1()
    });
    assert!(!reply.ok);
    assert_eq!(service.admission_stats().rejected_oversize, 2);
}

#[test]
fn wire_format_round_trips_seeds_and_samples_exactly() {
    // Request: a u64 seed beyond f64's integer range must survive.
    let req = FleetRequest {
        seed: Some(u64::MAX - 41),
        power_cap_w: Some(287.65),
        budget_w: Some(1234.5),
        ..request(9)
    };
    let back = FleetRequest::from_line(&req.to_line()).unwrap();
    assert_eq!(req, back);

    // Reply: every f64 sample bit pattern survives the JSON line.
    let service = FleetService::new(ServiceConfig::small());
    let reply = service.handle(&request(31));
    assert!(reply.ok);
    let back = FleetReply::from_line(&reply.to_line()).unwrap();
    assert_eq!(bits(&reply.samples), bits(&back.samples));
    assert_eq!(
        reply.registry.cross_payload_lookups,
        back.registry.cross_payload_lookups
    );
    assert_eq!(reply.shards, back.shards);
}
