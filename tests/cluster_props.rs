//! Cluster property tests: the Markov episode model, the fleet's
//! thread-count invariance, and the power-CDF query contract.
//!
//! proptest is not available offline, so the properties are exercised
//! over deterministic pseudo-random case lists (fixed seeds, the same
//! style as `tests/props.rs`).

use firestarter2::cluster::{
    BudgetPolicy, EpisodeModel, EpisodeWalk, FleetConfig, FleetSim, JobMix, PowerCdf, TemporalMode,
};

/// xorshift64* — deterministic case generator for the property loops.
struct Cases {
    state: u64,
}

impl Cases {
    fn new(seed: u64) -> Cases {
        Cases { state: seed.max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, n).
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Property (a): the episode walk's empirical time-per-state converges
/// to the model's stationary distribution — which, for a model built
/// with `from_mix`, is exactly the configured mix scaled by the floor
/// share. Checked across several seeds and dwell/share profiles.
#[test]
fn episode_stationary_converges_to_configured_mix() {
    let mix = JobMix::taurus_haswell();
    let mut cases = Cases::new(0xE915_0DE5);
    for case in 0..4 {
        // Random-but-valid dwell profile and floor share per case.
        let floor_share = 0.05 + cases.unit() * 0.2;
        let dwell: Vec<f64> = (0..mix.classes().len())
            .map(|_| 2.0 + cases.below(80) as f64)
            .collect();
        let ramps = vec![1u32; mix.classes().len()];
        let model = EpisodeModel::from_mix(&mix, floor_share, 10.0, &dwell, &ramps);

        // from_mix's closed-form shares match the power-iterated ones.
        let shares = model.stationary_time_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            (shares[0] - floor_share).abs() < 1e-9,
            "case {case}: floor share {} != {floor_share}",
            shares[0]
        );
        let total: f64 = mix.classes().iter().map(|(_, w)| w).sum();
        for (i, (_, w)) in mix.classes().iter().enumerate() {
            let want = (1.0 - floor_share) * w / total;
            assert!(
                (shares[i + 1] - want).abs() < 1e-9,
                "case {case}, class {i}: model share {} != configured {want}",
                shares[i + 1]
            );
        }

        // Empirical convergence over a fleet of walks.
        let seed = cases.next_u64();
        let mut ticks = vec![0u64; model.n_states()];
        for node in 0..24u32 {
            let mut walk = EpisodeWalk::new(&model, &mix, seed, node);
            for _ in 0..3000 {
                ticks[walk.next_tick().state] += 1;
            }
        }
        let total_ticks: u64 = ticks.iter().sum();
        for (i, &share) in shares.iter().enumerate() {
            let got = ticks[i] as f64 / total_ticks as f64;
            assert!(
                (got - share).abs() < 0.06,
                "case {case}, state {i}: empirical {got} vs stationary {share}"
            );
        }
    }
}

/// The fleet-level version of property (a): a full episode-mode run
/// reports stats that track the model, and the sample stream is
/// genuinely time-correlated.
#[test]
fn episode_fleet_stats_track_model_and_correlate() {
    let sim = FleetSim::new(FleetConfig {
        samples_per_node: 1500,
        temporal: TemporalMode::Episodes,
        ..FleetConfig::taurus_haswell_scaled(24)
    });
    let run = sim.run();
    let stats = run.episodes.expect("episode stats present");
    for ((&got, &want), &state) in stats
        .empirical_shares
        .iter()
        .zip(&stats.model_shares)
        .zip(&stats.states)
    {
        assert!(
            (got - want).abs() < 0.06,
            "{state}: empirical share {got} vs model {want}"
        );
    }
    assert!(
        stats.lag1_autocorr > 0.3,
        "episode power not autocorrelated: {}",
        stats.lag1_autocorr
    );
    // Dwell estimates stay within a factor-band of the configured means
    // (geometric draws, capped by per-node horizon effects).
    for ((&got, &want), &state) in stats
        .mean_dwell_ticks
        .iter()
        .zip(sim.config.episodes.mean_dwell_ticks())
        .zip(&stats.states)
    {
        assert!(
            got > want * 0.5 && got < want * 1.5,
            "{state}: empirical dwell {got} vs configured {want}"
        );
    }
}

/// Property (b): per-node episode walks are a pure function of
/// `(seed, node_id)`, so the fleet's sample stream is invariant to the
/// sweep thread count — including under a power cap and under fleet
/// budget arbitration (both policies).
#[test]
fn episode_walks_are_invariant_to_thread_count() {
    let mut cases = Cases::new(0x7128_EAD5);
    for case in 0..6 {
        let nodes = 4 + cases.below(12) as u32;
        let samples = 100 + cases.below(300) as u32;
        let mut cfg = FleetConfig {
            samples_per_node: samples,
            temporal: TemporalMode::Episodes,
            seed: cases.next_u64(),
            ..FleetConfig::taurus_haswell_scaled(nodes)
        };
        if case % 2 == 1 {
            cfg.power_cap_w = Some(280.0 + cases.unit() * 60.0);
        }
        if case >= 2 {
            // A binding-but-feasible budget: above the idle-floor sum
            // (~90 W per node), below the unconstrained mean draw
            // (~146 W per node).
            cfg.budget_w = Some(f64::from(nodes) * (100.0 + cases.unit() * 40.0));
            cfg.budget_policy = if case % 2 == 0 {
                BudgetPolicy::ShedToFloor
            } else {
                BudgetPolicy::Defer
            };
        }
        let runs: Vec<Vec<f64>> = [1usize, 2, 5]
            .iter()
            .map(|&threads| {
                let mut c = cfg.clone();
                c.threads = threads;
                FleetSim::new(c).generate()
            })
            .collect();
        assert_eq!(runs[0], runs[1], "case {case}: 2 threads diverged");
        assert_eq!(runs[0], runs[2], "case {case}: 5 threads diverged");
    }
}

/// Budget property: with `budget_w` set, the fleet-wide sum of node
/// draws never exceeds the budget in any synchronized 60 s tick, for
/// either policy and either temporal mode, across random fleet shapes
/// and budgets — as long as the budget covers the unconditional idle
/// floors.
#[test]
fn fleet_budget_bounds_every_tick_sum() {
    let mut cases = Cases::new(0xB0D6_E701);
    for case in 0..6 {
        let nodes = 6 + cases.below(12) as u32;
        let spn = 100 + cases.below(200) as usize;
        let budget_w = f64::from(nodes) * (95.0 + cases.unit() * 50.0);
        let policy = if case % 2 == 0 {
            BudgetPolicy::ShedToFloor
        } else {
            BudgetPolicy::Defer
        };
        let temporal = if case % 3 == 0 {
            TemporalMode::Iid
        } else {
            TemporalMode::Episodes
        };
        let run = FleetSim::new(FleetConfig {
            samples_per_node: spn as u32,
            temporal,
            seed: cases.next_u64(),
            budget_w: Some(budget_w),
            budget_policy: policy,
            ..FleetConfig::taurus_haswell_scaled(nodes)
        })
        .run();
        let stats = run.budget.as_ref().expect("budget stats");
        assert_eq!(
            stats.infeasible_floor_ticks, 0,
            "case {case}: budget {budget_w} fell below the idle floors"
        );
        // Samples are node-major with a uniform horizon.
        let n = run.samples.len() / spn;
        let tick_sums: Vec<f64> = (0..spn)
            .map(|t| (0..n).map(|i| run.samples[i * spn + t]).sum())
            .collect();
        for (t, &sum) in tick_sums.iter().enumerate() {
            assert!(
                sum <= budget_w + 1e-9,
                "case {case} ({policy:?}, {temporal:?}), tick {t}: \
                 fleet draw {sum} exceeds budget {budget_w}"
            );
        }
        // The reported peak matches the emitted stream's peak.
        let peak = tick_sums.into_iter().fold(0.0, f64::max);
        assert!((peak - stats.peak_fleet_w).abs() < 1e-6, "case {case}");
    }
}

/// Property (b) continued: identical `(seed, node_id)` pairs replay the
/// identical walk; changing either changes the stream.
#[test]
fn episode_walk_is_a_function_of_seed_and_node_id() {
    let mix = JobMix::taurus_haswell();
    let model = EpisodeModel::taurus_haswell(&mix);
    let mut cases = Cases::new(0x5EED_0123);
    for _ in 0..8 {
        let seed = cases.next_u64();
        let node = cases.below(1 << 20) as u32;
        let stream = |s: u64, n: u32| -> Vec<(usize, u64)> {
            let mut w = EpisodeWalk::new(&model, &mix, s, n);
            (0..200)
                .map(|_| {
                    let t = w.next_tick();
                    (t.state, t.duty.to_bits())
                })
                .collect()
        };
        assert_eq!(stream(seed, node), stream(seed, node));
        assert_ne!(stream(seed, node), stream(seed, node.wrapping_add(1)));
        assert_ne!(stream(seed, node), stream(seed ^ 1, node));
    }
}

/// Property (c): `quantile(fraction_at(x)) <= x` for any query at or
/// above the observed minimum, across random sample sets — plus
/// monotonicity of both directions and total absence of NaN/panics.
#[test]
fn power_cdf_round_trip_is_monotone() {
    let mut cases = Cases::new(0xCDF_CDF);
    for case in 0..96 {
        let n = 1 + cases.below(200) as usize;
        let lo = -50.0 + cases.unit() * 400.0;
        let span = 0.5 + cases.unit() * 300.0;
        let samples: Vec<f64> = (0..n).map(|_| lo + cases.unit() * span).collect();
        let bin_width = [0.1, 0.5, 2.0][cases.below(3) as usize];
        let cdf = PowerCdf::from_samples(&samples, bin_width);

        // Bins are monotone and end at full mass.
        for w in cdf.bins.windows(2) {
            assert!(w[1].1 >= w[0].1 && w[1].0 > w[0].0, "case {case}");
        }
        assert!((cdf.bins.last().unwrap().1 - 1.0).abs() < 1e-12);

        // The round trip never overshoots the query point.
        for _ in 0..50 {
            let x = lo - 5.0 + cases.unit() * (span + 10.0);
            let f = cdf.fraction_at(x);
            assert!((0.0..=1.0).contains(&f), "case {case}: fraction {f}");
            if x >= cdf.min_w {
                let q = cdf.quantile(f);
                assert!(
                    q <= x + 1e-9,
                    "case {case}: quantile(fraction_at({x})) = {q} > x"
                );
            }
        }

        // quantile is monotone in q and always finite.
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = cdf.quantile(f64::from(i) / 20.0);
            assert!(q.is_finite(), "case {case}: NaN quantile");
            assert!(q >= prev, "case {case}: quantile not monotone");
            prev = q;
        }
        assert!(cdf.quantile(1.0) <= cdf.max_w + 1e-9);
        assert_eq!(cdf.quantile(0.0), cdf.min_w);
    }
}

/// Property (c) edge cases: out-of-range quantiles and the empty CDF
/// must neither panic nor produce NaN.
#[test]
fn power_cdf_edge_cases_are_total() {
    let empty = PowerCdf::from_samples(&[], 0.1);
    assert_eq!(empty.samples, 0);
    for x in [-10.0, 0.0, 100.0, f64::INFINITY] {
        assert_eq!(empty.fraction_at(x), 0.0);
    }
    for q in [-2.0, 0.0, 0.5, 1.0, 3.0] {
        assert!(empty.quantile(q).is_finite());
    }
    let one = PowerCdf::from_samples(&[123.4], 0.1);
    assert_eq!(one.quantile(-1.0), one.min_w);
    assert!(one.quantile(2.0) <= one.max_w + 1e-9);
    assert!(one.quantile(0.5) <= 123.4 + 1e-9);
}
