//! Cross-crate integration of the engine/session layer: payload caching
//! across consumers, determinism of cached payloads, and parallel-sweep
//! equivalence — the acceptance criteria of the engine refactor.

use firestarter2::core::payload::build_payload;
use firestarter2::prelude::*;

fn engine() -> Engine {
    Engine::new(Sku::amd_epyc_7502())
}

fn quick_cfg(freq: f64) -> RunConfig {
    RunConfig {
        freq_mhz: freq,
        duration_s: 10.0,
        start_delta_s: 2.0,
        stop_delta_s: 1.0,
        functional_iters: 200,
        ..RunConfig::default()
    }
}

/// The payload cache demonstrably avoids rebuilds: a second session
/// running the same sweep costs zero builds.
#[test]
fn repeated_sessions_share_the_payload_cache() {
    let e = engine();
    let specs = ["REG:1", "REG:4,L1_L:2", "REG:4,L1_2LS:2,L2_LS:1"];
    let run_all = |e: &Engine| {
        let mut session = e.session();
        specs
            .iter()
            .map(|s| session.run_spec(s, &quick_cfg(1500.0)).unwrap().power)
            .collect::<Vec<_>>()
    };

    let first = run_all(&e);
    let stats = e.cache_stats();
    assert_eq!(stats.misses, specs.len() as u64);
    assert_eq!(stats.hits, 0);

    let second = run_all(&e);
    let stats = e.cache_stats();
    assert_eq!(
        stats.misses,
        specs.len() as u64,
        "second pass rebuilt payloads"
    );
    assert_eq!(stats.hits, specs.len() as u64);
    // Fresh session, same seed, cached payloads: identical summaries.
    assert_eq!(first, second);
}

/// Cached payloads are bitwise what a fresh `build_payload` produces.
#[test]
fn cached_payload_machine_code_is_deterministic() {
    let e = engine();
    for spec in ["REG:1", "REG:2,L1_LS:1,RAM_P:1", "REG:8,L1_2LS:4,L2_LS:1"] {
        let cfg = e.config_for_spec(spec).unwrap();
        let cached = e.payload(&cfg);
        let fresh = build_payload(e.sku(), &cfg);
        assert_eq!(cached.machine_code, fresh.machine_code, "spec {spec}");
        assert_eq!(cached.kernel, fresh.kernel, "spec {spec}");
    }
}

/// `Engine::sweep` with N threads returns results identical to the
/// serial path — full run summaries, not just means.
#[test]
fn parallel_sweep_is_bitwise_equal_to_serial() {
    let e = engine();
    let jobs: Vec<(&str, f64)> = vec![
        ("REG:1", 1500.0),
        ("REG:1", 2500.0),
        ("REG:4,L1_2LS:3", 1500.0),
        ("REG:4,L1_2LS:2,L2_LS:1", 2200.0),
        ("REG:6,L1_2LS:3,L2_LS:1,L3_LS:1", 1500.0),
        ("REG:8,L1_2LS:4,L2_LS:1,L3_LS:1,RAM_LS:1", 2500.0),
        ("REG:10,L1_2LS:4,L2_LS:2,L3_LS:1,RAM_L:1", 2500.0),
    ];
    let worker = |e: &Engine, _i: usize, job: &(&str, f64)| {
        let (spec, freq) = *job;
        let mut session = e.session();
        session.hold_power(60.0, 20.0, 300.0); // preheat, same per item
        let r = session.run_spec(spec, &quick_cfg(freq)).unwrap();
        (
            r.power,
            r.applied_freq_mhz,
            r.throttled,
            r.ipc,
            r.dc_access_rate,
            r.events,
            r.trivial_fraction,
        )
    };
    let serial = e.sweep(&jobs, 1, worker);
    for threads in [2, 4, 8] {
        let parallel = e.sweep(&jobs, threads, worker);
        assert_eq!(serial, parallel, "{threads}-thread sweep diverged");
    }
}

/// The NSGA-II loop draws candidate payloads from the engine cache:
/// duplicate genomes across generations stop costing rebuilds, and a
/// second tuning run on the same engine reuses earlier candidates.
#[test]
fn tuning_routes_payloads_through_the_cache() {
    let e = engine();
    let tune = TuneConfig {
        nsga2: Nsga2Config {
            individuals: 8,
            generations: 3,
            mutation_prob: 0.35,
            crossover_prob: 0.9,
            seed: 11,
        },
        test_duration_s: 10.0,
        preheat_s: 0.0,
        freq_mhz: 1500.0,
        unroll: Some(128),
        max_count: 4,
        ..TuneConfig::default()
    };
    let r1 = e.session().tune(&tune);
    let evals = r1.nsga2.history.len() as u64;
    let stats = e.cache_stats();
    assert_eq!(evals, 8 * 4);
    // The NSGA-II objective cache intercepts exact duplicate genomes
    // before they reach the payload layer, so within one run the engine
    // sees one request per distinct genome — each a build.
    assert_eq!(stats.requests(), evals - u64::from(r1.nsga2.cache_hits));
    assert_eq!(stats.misses, stats.requests());

    // An identical second tuning session on the same engine builds
    // nothing new: every candidate payload is a cache hit.
    let before = e.cache_stats();
    let r2 = e.session().tune(&tune);
    let after = e.cache_stats();
    assert_eq!(
        after.misses, before.misses,
        "second tuning rebuilt payloads"
    );
    assert_eq!(after.hits, before.hits + before.misses);
    assert_eq!(r1.best.genes, r2.best.genes);
    assert_eq!(r1.best.objectives, r2.best.objectives);
}

/// Engine::measure one-shots equal the long-hand Runner path.
#[test]
fn engine_measure_equals_runner_path() {
    let e = engine();
    let cfg = e.config_for_spec("REG:4,L1_L:2,L2_L:1").unwrap();
    let run_cfg = quick_cfg(2200.0);
    let via_engine = e.measure(&cfg, &run_cfg);

    let payload = build_payload(e.sku(), &cfg);
    let mut runner = Runner::new(Sku::amd_epyc_7502());
    let direct = runner.run(&payload, &run_cfg);
    assert_eq!(via_engine.power, direct.power);
    assert_eq!(via_engine.events, direct.events);
    assert_eq!(via_engine.applied_freq_mhz, direct.applied_freq_mhz);
}
