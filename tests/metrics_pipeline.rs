//! Integration of the metric stack with the runner: RAPL counters,
//! perf-IPC, the distorted IPC estimate, the buffered MetricQ path and
//! CSV reporting — the full §III-C measurement plumbing.

use firestarter2::metrics::builtin::{IpcEstimateMetric, PerfIpcMetric, RaplPowerMetric};
use firestarter2::metrics::metric::{Metric, MetricRegistry};
use firestarter2::metrics::{metricq, CsvWriter};
use firestarter2::power::rapl::Rapl;
use firestarter2::prelude::*;

fn run_once(freq: f64) -> (RunResult, Sku) {
    let sku = Sku::amd_epyc_7502();
    let mix = MixRegistry::default_for(sku.uarch);
    // Cache-saturating mix: exceeds the EDC limit at nominal frequency,
    // which the throttle-distortion test below depends on.
    let groups = parse_groups("REG:10,L1_2LS:4,L2_LS:2,L3_LS:1,RAM_L:1").unwrap();
    let unroll = default_unroll(&sku, mix, &groups);
    let payload = build_payload(
        &sku,
        &PayloadConfig {
            mix,
            groups,
            unroll,
        },
    );
    let mut runner = Runner::new(sku.clone());
    let r = runner.run(
        &payload,
        &RunConfig {
            freq_mhz: freq,
            duration_s: 20.0,
            start_delta_s: 4.0,
            stop_delta_s: 2.0,
            ..RunConfig::default()
        },
    );
    (r, sku)
}

#[test]
fn rapl_metric_reports_core_power() {
    let (r, sku) = run_once(1500.0);
    // Feed the RAPL counters from the run's breakdown at 1 Hz.
    let mut rapl = Rapl::new(sku.topology.sockets, true);
    let mut metric = RaplPowerMetric::new();
    for t in 0..10 {
        metric.record_energy_uj(f64::from(t), rapl.package_energy_uj());
        rapl.accumulate(&r.breakdown, 1.0);
    }
    let s = metric.summarize(0.0, 9.0, 1.0, 1.0).unwrap();
    let core_w = r.breakdown.core_dynamic_w + r.breakdown.core_static_w;
    assert!(
        (s.mean - core_w).abs() / core_w < 0.02,
        "RAPL metric {:.1} W vs model {core_w:.1} W",
        s.mean
    );
}

#[test]
fn perf_ipc_matches_steady_state() {
    let (r, _) = run_once(1500.0);
    let mut metric = PerfIpcMetric::new();
    // Cumulative counter feed from the run's per-core events.
    let e = r.events;
    metric.record_counters(0.0, 0, 0);
    metric.record_counters(10.0, e.instructions, e.cycles);
    let got = metric.series().samples()[0].value;
    assert!(
        (got - r.ipc).abs() < 0.02,
        "perf-ipc {got} vs model {}",
        r.ipc
    );
}

#[test]
fn ipc_estimate_distorted_under_throttling() {
    // Fig. 12 context: at 2500 MHz the workload throttles; the estimate
    // assumes nominal frequency and therefore under-reports IPC.
    let (r, _) = run_once(2500.0);
    assert!(r.throttled, "test requires a throttled run");
    let insts_per_iter = r.events.instructions as f64 / r.events.iterations as f64;
    let mut est = IpcEstimateMetric::new(2500.0, insts_per_iter);
    est.record_iterations(0.0, 0);
    let dur = r.events.elapsed_ns as f64 * 1e-9;
    est.record_iterations(dur, r.events.iterations);
    let estimated = est.series().samples()[0].value;
    assert!(
        estimated < r.ipc * 0.99,
        "estimate {estimated:.3} not distorted below true IPC {:.3}",
        r.ipc
    );
    // The distortion factor equals the throttle ratio.
    let expect = r.ipc * r.applied_freq_mhz / 2500.0;
    assert!((estimated - expect).abs() < 0.05);
}

#[test]
fn metricq_buffers_out_of_band_and_summarizes() {
    let (r, _) = run_once(1500.0);
    let (sink, mut source) = metricq::channel("metricq", 20.0);
    // The power meter samples while the candidate runs...
    sink.sample_window(0.0, 10.0, |_t| r.power.mean);
    // ...and FIRESTARTER retrieves the values afterwards (Fig. 10).
    assert_eq!(source.series().len(), 0);
    assert_eq!(source.drain(), 200);
    let s = source.summarize(0.0, 10.0, 2.0, 1.0).unwrap();
    assert!((s.mean - r.power.mean).abs() < 1e-9);
}

#[test]
fn registry_drives_all_metrics_and_prints_csv() {
    let mut registry = MetricRegistry::new();
    assert!(registry.register(Box::new(RaplPowerMetric::new())));
    assert!(registry.register(Box::new(PerfIpcMetric::new())));
    let (sink, source) = metricq::channel("metricq", 20.0);
    assert!(registry.register(Box::new(source)));
    assert_eq!(registry.names(), vec!["metricq", "perf-ipc", "rapl"]);

    sink.sample_window(0.0, 5.0, |_| 437.0);
    for t in 0..5 {
        let t = f64::from(t);
        registry.get_mut("rapl").unwrap().record(t, 430.0 + t);
        registry.get_mut("perf-ipc").unwrap().record(t, 3.4);
        registry.get_mut("metricq").unwrap().record(t, 0.0); // drains
    }

    let mut csv = CsvWriter::new();
    csv.header(&["metric", "mean", "unit"]);
    for m in registry.iter() {
        if let Some(s) = m.summarize(0.0, 5.0, 0.0, 0.0) {
            csv.row(&[
                m.name().to_string(),
                format!("{:.2}", s.mean),
                m.unit().to_string(),
            ]);
        }
    }
    let out = csv.finish();
    assert!(out.contains("rapl,432.00,W"));
    assert!(out.contains("perf-ipc,3.40"));
    assert!(out.contains("metricq,437.00,W"));
}
