# fs2 fleet profile v1
name = exemplar-v1
floor_share = 0.15
floor_dwell_ticks = 8

[class idle]
weight = 0.25
dwell_ticks = 6
ramp_ticks = 0
duty = 0 0.06
pstates = 2

[class low]
weight = 0.2
dwell_ticks = 10
ramp_ticks = 1
duty = 0.05 0.35
pstates = 2

[class medium]
weight = 0.2
dwell_ticks = 14
ramp_ticks = 1
duty = 0.35 0.75
pstates = 1 2

[class high]
weight = 0.2
dwell_ticks = 20
ramp_ticks = 2
duty = 0.8 1
pstates = 0 1

[class peak]
weight = 0.15
dwell_ticks = 30
ramp_ticks = 2
duty = 0.95 1
pstates = 0
