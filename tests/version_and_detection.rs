//! Integration tests for §III-D (version bug, error detection) and the
//! SKU-portability argument of §III-A.

use firestarter2::prelude::*;

fn run_with_init(init: InitScheme, freq: f64) -> RunResult {
    let sku = Sku::amd_epyc_7502();
    let mix = MixRegistry::default_for(sku.uarch);
    let groups = parse_groups("REG:1").unwrap();
    let unroll = default_unroll(&sku, mix, &groups);
    let payload = build_payload(
        &sku,
        &PayloadConfig {
            mix,
            groups,
            unroll,
        },
    );
    let mut runner = Runner::new(sku);
    runner.hold_power(240.0, 20.0, 300.0);
    runner.run(
        &payload,
        &RunConfig {
            freq_mhz: freq,
            duration_s: 30.0,
            start_delta_s: 5.0,
            stop_delta_s: 2.0,
            init,
            functional_iters: 2500,
            ..RunConfig::default()
        },
    )
}

/// §III-D: "The new version has a higher power consumption with 314.1 W
/// compared to the older version with 305.6 W" (Δ ≈ 8.5 W, ≈ 2.7 %).
#[test]
fn version_bug_costs_single_digit_watts() {
    let v2 = run_with_init(InitScheme::V2Safe, 2500.0);
    let v174 = run_with_init(InitScheme::V174Buggy, 2500.0);
    assert_eq!(v2.trivial_fraction, 0.0);
    assert!(
        v174.trivial_fraction > 0.8,
        "bug did not saturate: {}",
        v174.trivial_fraction
    );
    let delta = v2.power.mean - v174.power.mean;
    let rel = delta / v2.power.mean;
    assert!(
        (2.0..=20.0).contains(&delta),
        "delta {delta:.1} W out of band (v2 {:.1}, v1.7.4 {:.1})",
        v2.power.mean,
        v174.power.mean
    );
    assert!(rel > 0.005 && rel < 0.06, "relative delta {rel:.3}");
}

/// Error detection catches injected corruption across runs and cores.
#[test]
fn error_detection_end_to_end() {
    let sku = Sku::amd_epyc_7502();
    let mix = MixRegistry::default_for(sku.uarch);
    let groups = parse_groups("REG:2,L1_LS:1,L2_L:1").unwrap();
    let payload = build_payload(
        &sku,
        &PayloadConfig {
            mix,
            groups,
            unroll: 50,
        },
    );
    let mut runner = Runner::new(sku);
    let cfg = RunConfig {
        freq_mhz: 1500.0,
        duration_s: 5.0,
        start_delta_s: 1.0,
        stop_delta_s: 0.5,
        error_detection: true,
        ..RunConfig::default()
    };
    assert_eq!(runner.run(&payload, &cfg).error_check_passed, Some(true));
    for bit in [0, 31, 52, 63] {
        runner.inject_fault_next_run(0, 3, bit);
        assert_eq!(
            runner.run(&payload, &cfg).error_check_passed,
            Some(false),
            "bit {bit} flip undetected"
        );
    }
}

/// §III-A: the same family/model spans SKUs with different core counts;
/// detection distinguishes them by brand string, and the static legacy
/// workload transfers poorly to the smaller part (its RAM share was tuned
/// for 32 cores per socket).
#[test]
fn sku_variation_changes_the_optimal_workload() {
    let big = Sku::amd_epyc_7502();
    let small = Sku::amd_epyc_7302();
    assert_eq!(big.family, small.family);
    assert_eq!(big.model, small.model);
    assert_ne!(big.topology.total_cores(), small.topology.total_cores());

    // A RAM-heavy workload: on the 16-core SKU each core gets twice the
    // DRAM share, so its per-core stall picture differs.
    let spec = "REG:2,RAM_LS:2";
    let mix = MixRegistry::default_for(big.uarch);
    let groups = parse_groups(spec).unwrap();
    let unroll = 128;
    let p_big = build_payload(
        &big,
        &PayloadConfig {
            mix,
            groups: groups.clone(),
            unroll,
        },
    );
    let p_small = build_payload(
        &small,
        &PayloadConfig {
            mix,
            groups,
            unroll,
        },
    );

    let sim_big = SystemSim::new(big);
    let sim_small = SystemSim::new(small);
    let ss_big = sim_big.evaluate(&p_big.kernel, 2500.0, None);
    let ss_small = sim_small.evaluate(&p_small.kernel, 2500.0, None);
    assert!(
        ss_small.core.ipc > ss_big.core.ipc * 1.2,
        "per-core IPC should rise with fewer cores: {} vs {}",
        ss_small.core.ipc,
        ss_big.core.ipc
    );
}

/// DRAM population changes the bottleneck too (§III-A's second case).
#[test]
fn dram_timings_change_behaviour_on_same_sku() {
    use firestarter2::arch::DramConfig;
    let fast = Sku::amd_epyc_7502();
    let slow = Sku::amd_epyc_7502().with_dram(DramConfig {
        channels: 4,
        mem_clock_mhz: 1200,
        latency_ns: 110.0,
        efficiency: 0.65,
    });
    let mix = MixRegistry::default_for(fast.uarch);
    let groups = parse_groups("REG:2,RAM_LS:2").unwrap();
    let p = build_payload(
        &fast,
        &PayloadConfig {
            mix,
            groups,
            unroll: 128,
        },
    );
    let ss_fast = SystemSim::new(fast).evaluate(&p.kernel, 2500.0, None);
    let ss_slow = SystemSim::new(slow).evaluate(&p.kernel, 2500.0, None);
    assert!(
        ss_slow.core.cycles_per_iter > ss_fast.core.cycles_per_iter * 1.5,
        "slow DRAM must hurt: {} vs {} cycles/iter",
        ss_slow.core.cycles_per_iter,
        ss_fast.core.cycles_per_iter
    );
}

/// CPUID detection picks the right workload path end-to-end.
#[test]
fn detection_to_payload_pipeline() {
    for (id, expect_mix) in [
        (CpuId::amd_rome(), "FMA"),
        (CpuId::intel_haswell(), "FMA"),
        (
            CpuId {
                vendor: firestarter2::arch::Vendor::Unknown,
                family: 0,
                model: 0,
                brand: "Mystery CPU".to_string(),
            },
            "AVX",
        ),
    ] {
        let sku = detect(&id);
        let mix = MixRegistry::default_for(sku.uarch);
        assert_eq!(mix.name, expect_mix, "for {}", id.brand);
        let groups = parse_groups("REG:1").unwrap();
        let payload = build_payload(
            &sku,
            &PayloadConfig {
                mix,
                groups,
                unroll: 64,
            },
        );
        assert!(payload.kernel.insts() > 0);
    }
}
