//! Chaos-harness integration: under seeded fault injection (worker
//! panics, worker deaths, dropped replies, truncated frames, stalled
//! peers) the service stack must never hang or leak threads, must keep
//! its admission ledger balanced and its queue depth bounded, and a
//! retried request must come back bitwise-identical to an undisturbed
//! run — the faults are deterministic, the samples are pure.

use firestarter2::cluster::FleetSim;
use firestarter2::service::proto::kind;
use firestarter2::service::{
    call_with_retry, serve_with, AdmissionConfig, ChaosConfig, Client, ClientError, FleetReply,
    FleetRequest, FleetService, RetryPolicy, ServiceConfig, TransportConfig,
};
use std::io::Write;
use std::sync::Arc;

fn bits(samples: &[f64]) -> Vec<u64> {
    samples.iter().map(|s| s.to_bits()).collect()
}

fn request(seed: u64) -> FleetRequest {
    FleetRequest {
        nodes: 8,
        samples_per_node: 40,
        seed: Some(seed),
        ..FleetRequest::fig1()
    }
}

fn chaotic_config(chaos: ChaosConfig) -> ServiceConfig {
    ServiceConfig {
        workers: 3,
        default_shards: 3,
        chaos,
        ..ServiceConfig::small()
    }
}

#[test]
fn injected_panics_and_kills_never_hang_and_never_leak_threads() {
    // Panic every 3rd request, kill a worker every 4th: a hostile mix.
    let service = Arc::new(FleetService::new(chaotic_config(ChaosConfig {
        seed: 41,
        panic_every: 3,
        kill_every: 4,
        ..ChaosConfig::default()
    })));
    let baseline = FleetSim::new(request(7).to_config()).run();
    let want = bits(&baseline.samples);

    let mut ok = 0u64;
    let mut panicked = 0u64;
    for _ in 0..12 {
        let reply = service.handle(&request(7));
        if reply.ok {
            ok += 1;
            assert_eq!(want, bits(&reply.samples), "disturbed run changed bytes");
        } else {
            panicked += 1;
            assert_eq!(reply.error_kind.as_deref(), Some(kind::SHARD_PANIC));
            let pool = reply.pool.expect("failed replies carry pool counters");
            assert!(pool.panics_caught >= 1);
        }
    }
    assert_eq!(ok + panicked, 12, "every request resolved");
    assert_eq!(panicked, 4, "panic_every=3 over 12 requests");

    // No thread leak: supervision restored the pool to full strength.
    let pool = service.pool_stats();
    assert_eq!(pool.live_workers, 3, "dead workers were not respawned");
    assert!(pool.workers_respawned >= 1, "kill_every=4 never fired");
    assert_eq!(pool.panics_caught, 4);

    // The ledger balances: everything admitted either completed or
    // failed, nothing vanished.
    let stats = service.admission_stats();
    assert_eq!(stats.submitted(), 12);
    assert_eq!(stats.admitted, 12);
    assert_eq!(stats.completed, ok);
    assert_eq!(stats.failed, panicked);
    assert_eq!(stats.active, 0);
    assert_eq!(stats.queue_depth, 0);

    // Chaos accounting matches what we observed on the wire.
    let chaos = service.chaos().expect("chaos was configured on");
    assert_eq!(chaos.panics_injected(), 4);
    assert_eq!(chaos.kills_injected(), 3);
}

#[test]
fn retried_request_is_bitwise_identical_to_an_undisturbed_run() {
    // The schedule is request-indexed: request #2 panics, the retry
    // (request #3) does not — and must reproduce the clean bytes.
    let service = Arc::new(FleetService::new(chaotic_config(ChaosConfig {
        seed: 91,
        panic_every: 2,
        ..ChaosConfig::default()
    })));
    let undisturbed = Arc::new(FleetService::new(chaotic_config(ChaosConfig::default())));

    let first = service.handle(&request(19));
    assert!(first.ok);
    let second = service.handle(&request(19));
    assert!(!second.ok, "request #2 must hit the injected panic");
    assert_eq!(second.error_kind.as_deref(), Some(kind::SHARD_PANIC));
    let retry = service.handle(&request(19));
    assert!(retry.ok, "the retry must succeed");

    let clean = undisturbed.handle(&request(19));
    assert!(clean.ok);
    assert_eq!(
        bits(&retry.samples),
        bits(&clean.samples),
        "retry after an injected fault diverged from the undisturbed run"
    );
    // The payload (not just the floats) survives: same shard count,
    // same power points, and a one-shot library run agrees too.
    assert_eq!(retry.shards, clean.shards);
    assert_eq!(retry.power_points, clean.power_points);
    let direct = FleetSim::new(request(19).to_config()).run();
    assert_eq!(bits(&retry.samples), bits(&direct.samples));
}

#[test]
fn deadline_pressure_keeps_the_queue_bounded_and_the_ledger_balanced() {
    // Workers die, deadlines reject, and a 12-caller storm hits a
    // 1-active / 2-queued gate: depth must stay bounded and every
    // request must land in exactly one ledger column.
    let service = Arc::new(FleetService::new(ServiceConfig {
        workers: 2,
        default_shards: 2,
        admission: AdmissionConfig {
            max_active: 1,
            max_queue: 2,
            cost_per_ms: 1, // 8 × 40 = 320 node·samples → ~320 ms estimate
            ..AdmissionConfig::default()
        },
        chaos: ChaosConfig {
            seed: 5,
            kill_every: 2,
            ..ChaosConfig::default()
        },
    }));
    let tight = FleetRequest {
        deadline_ms: Some(10), // unmeetable: estimate is ~320 ms
        ..request(3)
    };
    let loose = FleetRequest {
        deadline_ms: Some(600_000),
        ..request(3)
    };
    let handles: Vec<_> = (0..12)
        .map(|i| {
            let service = Arc::clone(&service);
            let req = if i % 3 == 0 {
                tight.clone()
            } else {
                loose.clone()
            };
            std::thread::spawn(move || service.handle(&req))
        })
        .collect();
    let replies: Vec<FleetReply> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut deadline_rejected = 0u64;
    for r in &replies {
        match (r.ok, r.error_kind.as_deref()) {
            (true, _) => ok += 1,
            (false, Some(kind::ADMISSION_BUSY)) => shed += 1,
            (false, Some(kind::ADMISSION_DEADLINE)) => deadline_rejected += 1,
            (false, other) => panic!("unexpected failure kind {other:?}: {:?}", r.error),
        }
    }
    assert_eq!(ok + shed + deadline_rejected, 12);
    assert_eq!(deadline_rejected, 4, "every tight deadline is screened");
    assert!(ok >= 1);

    let stats = service.admission_stats();
    assert_eq!(stats.submitted(), 12);
    assert_eq!(stats.rejected_deadline, 4);
    assert_eq!(stats.admitted, ok); // nothing admitted ever vanished
    assert_eq!(stats.completed + stats.failed, stats.admitted);
    assert_eq!(stats.shed_busy, shed);
    assert!(
        stats.peak_queue_depth <= 2,
        "queue bound violated: {stats:?}"
    );
    assert_eq!(stats.active, 0);
    assert_eq!(stats.queue_depth, 0);

    // Worker deaths during the storm were all repaired.
    assert_eq!(service.pool_stats().live_workers, 2);
}

#[test]
fn dropped_replies_are_absorbed_by_the_retry_client_bitwise() {
    // The server drops every 2nd reply mid-stream (closes the socket
    // after doing the work). A retrying client must converge on bytes
    // identical to the one-shot library run.
    let service = Arc::new(FleetService::new(chaotic_config(ChaosConfig {
        seed: 77,
        drop_reply_every: 2,
        ..ChaosConfig::default()
    })));
    let server = serve_with(service, "127.0.0.1:0", TransportConfig::default()).unwrap();
    let addr = server.local_addr().to_string();

    let want = bits(&FleetSim::new(request(29).to_config()).run().samples);
    let policy = RetryPolicy {
        attempts: 4,
        base_ms: 5,
        cap_ms: 40,
        seed: 13,
    };
    for round in 0..4 {
        let line = call_with_retry(&addr, &request(29).to_line(), policy)
            .unwrap_or_else(|e| panic!("round {round}: retries exhausted: {e}"));
        let reply = FleetReply::from_line(&line).unwrap();
        assert!(reply.ok, "{:?}", reply.error);
        assert_eq!(want, bits(&reply.samples), "round {round} diverged");
    }
    server.shutdown();
}

#[test]
fn truncated_frames_and_stalled_peers_do_not_pin_the_server() {
    let service = Arc::new(FleetService::new(chaotic_config(ChaosConfig::default())));
    let server = serve_with(
        service,
        "127.0.0.1:0",
        TransportConfig {
            poll_ms: 5,
            stall_polls: 10, // ~50 ms idle budget
            ..TransportConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    // A peer that sends half a frame and disconnects: served nothing,
    // hurt nothing.
    {
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        s.write_all(b"{\"type\":\"fleet\",\"nod").unwrap();
    } // dropped: truncated frame, no newline

    // A peer that sends half a frame and goes quiet: disconnected with
    // a typed reply once the stall budget runs out. The server closes
    // after writing it, so read-to-eof captures the whole line.
    let mut stalled = std::net::TcpStream::connect(&addr).unwrap();
    stalled.write_all(b"{\"type\":\"fleet\",\"nod").unwrap();
    let mut answer = String::new();
    std::io::Read::read_to_string(&mut stalled, &mut answer).unwrap();
    let reply = FleetReply::from_line(answer.trim()).unwrap();
    assert!(!reply.ok);
    assert_eq!(reply.error_kind.as_deref(), Some(kind::PEER_STALLED));

    // The server is still fully alive for honest clients…
    let mut honest = Client::connect(&addr).unwrap();
    let reply = FleetReply::from_line(&honest.request(&request(11).to_line()).unwrap()).unwrap();
    assert!(reply.ok, "{:?}", reply.error);

    // …and shutdown drains every connection instead of hanging on the
    // ones the chaos peers abandoned.
    server.shutdown();
    assert!(matches!(
        honest.request(&request(11).to_line()),
        Err(ClientError::Eof | ClientError::Io(_))
    ));
}
