//! Calibrator property tests: self-clone recovery, purity of the fit
//! in `(trace, seed)`, and thread-count invariance of every fitted
//! parameter and fidelity number.
//!
//! proptest is not available offline, so the properties run over
//! deterministic seeded cases (the `tests/cluster_props.rs` style).
//! The self-clone trace is synthesized from the pinned exemplar
//! profile — known ground truth — and the acceptance tolerances are
//! the ones CI gates on: stationary shares within 2 %, lag-1
//! autocorrelation within 0.02, per-state mean dwell within 10 %.

use firestarter2::calib::{calibrate, CalibConfig, CalibrationResult, FleetProfile, Trace};
use firestarter2::cluster::{FleetConfig, FleetSim, TemporalMode};

/// Synthesizes a state-labeled trace from a known profile.
fn trace_from(profile: &FleetProfile, nodes: u32, ticks: u32, seed: u64) -> Trace {
    let mut cfg = FleetConfig {
        samples_per_node: ticks,
        seed,
        temporal: TemporalMode::Episodes,
        ..FleetConfig::taurus_haswell_scaled(nodes)
    };
    profile.apply(&mut cfg);
    let run = FleetSim::new(cfg.clone()).run();
    Trace::from_fleet(&cfg, &run.samples)
}

/// The self-clone fixture: exemplar-profile trace + a bounded
/// calibration budget (the CI smoke uses the same shape).
fn self_clone_case(threads: usize) -> (Trace, CalibConfig) {
    let trace = trace_from(&FleetProfile::exemplar(), 96, 1200, 0x7AC3_D00D);
    let cfg = CalibConfig {
        eval_nodes: 32,
        eval_ticks: 600,
        clone_nodes: 0,
        clone_ticks: 0,
        seed: 0xCA11_BF17,
        threads,
        individuals: 12,
        generations: 6,
    };
    (trace, cfg)
}

/// Bitwise equality of every float in a calibration result (profile
/// text is canonical, so string equality covers the profile; report
/// floats compare by bits).
fn assert_bitwise_equal(a: &CalibrationResult, b: &CalibrationResult) {
    assert_eq!(a.profile.to_text(), b.profile.to_text());
    let fa = [
        a.report.cdf_distance,
        a.report.target_lag1,
        a.report.clone_lag1,
        a.report.autocorr_error,
        a.report.max_share_error,
        a.report.mean_dwell_rel_error,
        a.report.max_dwell_rel_error,
    ];
    let fb = [
        b.report.cdf_distance,
        b.report.target_lag1,
        b.report.clone_lag1,
        b.report.autocorr_error,
        b.report.max_share_error,
        b.report.mean_dwell_rel_error,
        b.report.max_dwell_rel_error,
    ];
    for (x, y) in fa.iter().zip(&fb) {
        assert_eq!(x.to_bits(), y.to_bits(), "fidelity float changed bits");
    }
    assert_eq!(a.report.states.len(), b.report.states.len());
    for (sa, sb) in a.report.states.iter().zip(&b.report.states) {
        assert_eq!(sa.state, sb.state);
        assert_eq!(sa.target_share.to_bits(), sb.target_share.to_bits());
        assert_eq!(sa.clone_share.to_bits(), sb.clone_share.to_bits());
        assert_eq!(
            sa.target_dwell_ticks.to_bits(),
            sb.target_dwell_ticks.to_bits()
        );
        assert_eq!(
            sa.clone_dwell_ticks.to_bits(),
            sb.clone_dwell_ticks.to_bits()
        );
    }
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(a.nsga_cache_hits, b.nsga_cache_hits);
}

#[test]
fn self_clone_recovers_the_known_profile() {
    let truth = FleetProfile::exemplar();
    let (trace, cfg) = self_clone_case(0);
    let result = calibrate(&trace, &cfg).unwrap();
    let r = &result.report;
    // The CI-gated acceptance tolerances.
    assert!(
        r.max_share_error <= 0.02,
        "share error {} > 2 %",
        r.max_share_error
    );
    assert!(
        r.autocorr_error <= 0.02,
        "autocorr error {} > 0.02",
        r.autocorr_error
    );
    assert!(
        r.max_dwell_rel_error <= 0.10,
        "dwell error {} > 10 %",
        r.max_dwell_rel_error
    );
    // Parameter recovery against ground truth: floor share and the
    // moment-matched class weights/dwells land on the generating
    // profile, not just on matched statistics.
    let p = &result.profile;
    assert!(
        (p.floor_share - truth.floor_share).abs() <= 0.02,
        "floor share {} vs {}",
        p.floor_share,
        truth.floor_share
    );
    let total: f64 = truth.classes.iter().map(|c| c.weight).sum();
    for (fit, want) in p.classes.iter().zip(&truth.classes) {
        let want_share = (1.0 - truth.floor_share) * want.weight / total;
        assert!(
            (fit.weight - want_share).abs() <= 0.02,
            "{}: weight {} vs share {want_share}",
            fit.name,
            fit.weight
        );
        let rel = (fit.dwell_ticks - want.dwell_ticks).abs() / want.dwell_ticks;
        assert!(
            rel <= 0.15,
            "{}: dwell {} vs {} (rel {rel})",
            fit.name,
            fit.dwell_ticks,
            want.dwell_ticks
        );
    }
    // The fidelity clone really ran: per-state table covers floor +
    // every class with positive share.
    assert_eq!(r.states.len(), 6);
    assert!(r.states.iter().all(|s| s.clone_share > 0.0));
}

#[test]
fn fit_is_a_pure_function_of_trace_and_seed() {
    let (trace, cfg) = self_clone_case(0);
    let a = calibrate(&trace, &cfg).unwrap();
    let b = calibrate(&trace, &cfg).unwrap();
    assert_bitwise_equal(&a, &b);
    // A different seed is allowed to (and here does) pick a
    // different duty genome — the fit depends on the seed only.
    let other = calibrate(
        &trace,
        &CalibConfig {
            seed: cfg.seed ^ 0xDEAD,
            ..cfg.clone()
        },
    )
    .unwrap();
    // Moment-matched parts still agree (they come from the trace,
    // not the optimizer).
    assert!((other.profile.floor_share - a.profile.floor_share).abs() < 1e-12);
}

#[test]
fn thread_count_never_changes_the_fit() {
    let (trace, cfg1) = self_clone_case(1);
    let (_, cfg4) = self_clone_case(4);
    let a = calibrate(&trace, &cfg1).unwrap();
    let b = calibrate(&trace, &cfg4).unwrap();
    assert_bitwise_equal(&a, &b);
}

#[test]
fn unlabeled_trace_fits_cdf_and_autocorrelation() {
    // Strip the labels off the self-clone trace: calibration falls
    // back to searching floor share, dwell scale and weights too.
    let labeled = trace_from(&FleetProfile::exemplar(), 48, 600, 0x7AC3_D00D);
    let csv = labeled.to_csv();
    let headerless: String = {
        let mut lines = csv.lines();
        let mut out = String::from("node,tick,power_w\n");
        lines.next();
        for l in lines {
            let mut parts = l.splitn(4, ',');
            let node = parts.next().unwrap();
            let tick = parts.next().unwrap();
            let power = parts.next().unwrap();
            out.push_str(&format!("{node},{tick},{power}\n"));
        }
        out
    };
    let unlabeled = Trace::from_csv(&headerless).unwrap();
    assert!(!unlabeled.is_labeled());
    let cfg = CalibConfig {
        eval_nodes: 24,
        eval_ticks: 400,
        individuals: 10,
        generations: 5,
        ..CalibConfig::default()
    };
    let result = calibrate(&unlabeled, &cfg).unwrap();
    let r = &result.report;
    // Without labels there are no share/dwell targets...
    assert!(r.states.is_empty());
    assert_eq!(r.max_share_error, 0.0);
    // ...but the distributional fit must still hold.
    assert!(
        r.cdf_distance <= 0.10,
        "unlabeled cdf distance {}",
        r.cdf_distance
    );
    assert!(
        r.autocorr_error <= 0.10,
        "unlabeled autocorr error {}",
        r.autocorr_error
    );
}
