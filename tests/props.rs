//! Cross-crate property tests: any valid workload specification yields a
//! well-formed, decodable, simulatable payload.
//!
//! proptest is not available offline, so the properties are exercised
//! over a deterministic pseudo-random case list (fixed seed, 96+ cases
//! per property — the same budget the proptest version used).

use firestarter2::prelude::*;

/// xorshift64* — deterministic case generator for the property loops.
struct Cases {
    state: u64,
}

impl Cases {
    fn new(seed: u64) -> Cases {
        Cases { state: seed.max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, n).
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Random gene vector over the 17 valid items, at least one non-zero.
    fn groups(&mut self) -> Vec<AccessGroup> {
        loop {
            let counts: Vec<u32> = (0..17).map(|_| self.below(6) as u32).collect();
            if counts.iter().any(|&c| c > 0) {
                return firestarter2::core::autotune::genes_to_groups(&counts);
            }
        }
    }

    fn mix(&mut self) -> InstructionMix {
        match self.below(3) {
            0 => InstructionMix::FMA,
            1 => InstructionMix::AVX,
            _ => InstructionMix::SQRT,
        }
    }
}

#[test]
fn any_valid_workload_builds_and_simulates() {
    let sku = Sku::amd_epyc_7502();
    let model = NodePowerModel::new(sku.clone());
    let sim = SystemSim::new(sku.clone());
    let mut cases = Cases::new(0xF12E_57A2);
    for case in 0..96 {
        let groups = cases.groups();
        let mix = cases.mix();
        let unroll = 1 + cases.below(299) as u32;
        let freq = [1500.0, 2200.0, 2500.0][cases.below(3) as usize];
        let payload = build_payload(
            &sku,
            &PayloadConfig {
                mix,
                groups: groups.clone(),
                unroll,
            },
        );

        // 1. Machine code decodes completely.
        let decoded =
            firestarter2::isa::decode_all(&payload.machine_code).expect("payload must decode");
        assert!(
            decoded.len() as u64 >= payload.kernel.insts(),
            "case {case}: decoded {} < kernel {}",
            decoded.len(),
            payload.kernel.insts()
        );

        // 2. Steady state is finite and positive.
        let node = sim.evaluate(&payload.kernel, freq, None);
        assert!(node.core.cycles_per_iter.is_finite());
        assert!(node.core.cycles_per_iter > 0.0);
        assert!(
            node.core.ipc > 0.0 && node.core.ipc < 8.0,
            "case {case}: ipc {}",
            node.core.ipc
        );

        // 3. Power is finite, above idle, below a sane node ceiling.
        let p = model.workload_power(&node, &payload.kernel, 0.0);
        let total = p.total_w();
        assert!(total.is_finite());
        assert!(total > model.idle_power().total_w());
        assert!(
            total < 1200.0,
            "case {case}: implausible node power {total}"
        );
    }
}

#[test]
fn group_strings_round_trip() {
    let mut cases = Cases::new(0x5EED);
    for _ in 0..96 {
        let groups = cases.groups();
        let s = format_groups(&groups);
        let parsed = parse_groups(&s).expect("canonical form parses");
        assert_eq!(parsed, groups, "round trip failed for `{s}`");
    }
}

#[test]
fn unroll_scales_code_size_linearly() {
    let sku = Sku::amd_epyc_7502();
    let groups = parse_groups("REG:1").unwrap();
    let mut cases = Cases::new(0xC0DE);
    for _ in 0..32 {
        let u = 10 + cases.below(190) as u32;
        let build = |unroll: u32| {
            build_payload(
                &sku,
                &PayloadConfig {
                    mix: InstructionMix::FMA,
                    groups: groups.clone(),
                    unroll,
                },
            )
            .kernel
            .code_bytes
        };
        // Affine in u: equal increments for equal unroll steps.
        let (b1, b2, b3) = (build(u), build(2 * u), build(3 * u));
        assert_eq!(b2 - b1, b3 - b2, "nonlinear code growth at u = {u}");
        assert!(b2 > b1);
    }
}

#[test]
fn functional_execution_never_goes_trivial_with_v2_init() {
    // §III-D: the v2.0 initialization must keep every FMA operand
    // non-trivial (no ±∞/0/NaN) regardless of the access-group mix —
    // otherwise the generated workload silently loses power.
    let sku = Sku::amd_epyc_7502();
    let mut cases = Cases::new(0x111D);
    for case in 0..24 {
        let groups = cases.groups();
        let unroll = 8 + cases.below(56) as u32;
        let seed = cases.next_u64();
        let payload = build_payload(
            &sku,
            &PayloadConfig {
                mix: InstructionMix::FMA,
                groups: groups.clone(),
                unroll,
            },
        );
        let mut ex = firestarter2::sim::Executor::new(firestarter2::sim::InitScheme::V2Safe, seed);
        ex.run(&payload.kernel, 500);
        assert_eq!(
            ex.stats().trivial_lane_ops,
            0,
            "case {case}: trivial operands for {} @u{unroll}",
            format_groups(&groups)
        );
        assert!(
            !ex.any_trivial_register(),
            "case {case}: register went trivial for {}",
            format_groups(&groups)
        );
    }
}

#[test]
fn distribution_preserves_counts() {
    use firestarter2::core::distribute::distribute;
    let mut cases = Cases::new(0xD157);
    for _ in 0..96 {
        let counts: Vec<u32> = (0..1 + cases.below(5))
            .map(|_| 1 + cases.below(8) as u32)
            .collect();
        let groups: Vec<AccessGroup> = counts.iter().map(|&c| AccessGroup::reg(c)).collect();
        // Same-target groups are fine for the scheduler itself.
        let seq = distribute(&groups);
        let total: u32 = counts.iter().sum();
        assert_eq!(seq.len() as u32, total);
        for (k, &c) in counts.iter().enumerate() {
            let got = seq.iter().filter(|&&g| g == k).count() as u32;
            assert_eq!(got, c, "group {k} count mismatch");
        }
    }
}
