//! Cross-crate property tests: any valid workload specification yields a
//! well-formed, decodable, simulatable payload.

use firestarter2::prelude::*;
use proptest::prelude::*;

fn arb_groups() -> impl Strategy<Value = Vec<AccessGroup>> {
    // Counts for all 17 valid items; at least one non-zero.
    prop::collection::vec(0u32..6, 17)
        .prop_filter("at least one group", |v| v.iter().any(|&c| c > 0))
        .prop_map(|counts| {
            firestarter2::core::autotune::genes_to_groups(&counts)
        })
}

fn arb_mix() -> impl Strategy<Value = InstructionMix> {
    prop_oneof![
        Just(InstructionMix::FMA),
        Just(InstructionMix::AVX),
        Just(InstructionMix::SQRT)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn any_valid_workload_builds_and_simulates(
        groups in arb_groups(),
        mix in arb_mix(),
        unroll in 1u32..300,
        freq in prop_oneof![Just(1500.0f64), Just(2200.0), Just(2500.0)],
    ) {
        let sku = Sku::amd_epyc_7502();
        let payload = build_payload(&sku, &PayloadConfig { mix, groups: groups.clone(), unroll });

        // 1. Machine code decodes completely.
        let decoded = firestarter2::isa::decode_all(&payload.machine_code)
            .expect("payload must decode");
        prop_assert!(decoded.len() as u64 >= payload.kernel.insts());

        // 2. Steady state is finite and positive.
        let sim = SystemSim::new(sku.clone());
        let node = sim.evaluate(&payload.kernel, freq, None);
        prop_assert!(node.core.cycles_per_iter.is_finite());
        prop_assert!(node.core.cycles_per_iter > 0.0);
        prop_assert!(node.core.ipc > 0.0 && node.core.ipc < 8.0);

        // 3. Power is finite, above idle, below a sane node ceiling.
        let model = NodePowerModel::new(sku);
        let p = model.workload_power(&node, &payload.kernel, 0.0);
        let total = p.total_w();
        prop_assert!(total.is_finite());
        prop_assert!(total > model.idle_power().total_w());
        prop_assert!(total < 1200.0, "implausible node power {total}");
    }

    #[test]
    fn group_strings_round_trip(groups in arb_groups()) {
        let s = format_groups(&groups);
        let parsed = parse_groups(&s).expect("canonical form parses");
        prop_assert_eq!(parsed, groups);
    }

    #[test]
    fn unroll_scales_code_size_linearly(
        unroll in 10u32..200,
    ) {
        let sku = Sku::amd_epyc_7502();
        let groups = parse_groups("REG:1").unwrap();
        let p1 = build_payload(&sku, &PayloadConfig {
            mix: InstructionMix::FMA, groups: groups.clone(), unroll });
        let p2 = build_payload(&sku, &PayloadConfig {
            mix: InstructionMix::FMA, groups, unroll: unroll * 2 });
        // Twice the groups ⇒ twice the group instructions (±tail).
        let tail = 32; // dec+jnz+resets bytes bound
        prop_assert!(p2.kernel.code_bytes >= p1.kernel.code_bytes * 2 - tail);
        prop_assert!(p2.kernel.code_bytes <= p1.kernel.code_bytes * 2 + tail);
    }

    #[test]
    fn functional_execution_never_goes_trivial_with_v2_init(
        groups in arb_groups(),
        seed in 1u64..1000,
    ) {
        let sku = Sku::amd_epyc_7502();
        let payload = build_payload(&sku, &PayloadConfig {
            mix: InstructionMix::FMA, groups, unroll: 21 });
        let mut ex = firestarter2::sim::Executor::new(InitScheme::V2Safe, seed);
        ex.run(&payload.kernel, 300);
        prop_assert_eq!(ex.stats().trivial_lane_ops, 0);
    }

    #[test]
    fn distribution_preserves_counts(
        counts in prop::collection::vec(1u32..9, 1..6),
    ) {
        use firestarter2::core::distribute::distribute;
        let groups: Vec<AccessGroup> =
            counts.iter().map(|&c| AccessGroup::reg(c)).collect();
        // Same-target groups are fine for the scheduler itself.
        let seq = distribute(&groups);
        let total: u32 = counts.iter().sum();
        prop_assert_eq!(seq.len() as u32, total);
        for (k, &c) in counts.iter().enumerate() {
            let got = seq.iter().filter(|&&g| g == k).count() as u32;
            prop_assert_eq!(got, c);
        }
    }
}
